// Distributed kNN join (queries/knn_mr.h) vs. the brute-force oracle and
// the single-node KnnJoin, plus its scheduler / catalog / explain plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/dataset_catalog.h"
#include "core/explain.h"
#include "core/scheduler.h"
#include "queries/knn_mr.h"
#include "testing/world.h"

namespace mwsj {
namespace {

using testing::KnnOracleTuples;
using testing::KnnSingleNodeTuples;

std::vector<Rect> RandomPointRects(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Rect::FromPoint(
        Point{rng.Uniform(0, space), rng.Uniform(0, space)}));
  }
  return out;
}

std::vector<Rect> RandomRects(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 8);
    const double b = rng.Uniform(0, 8);
    out.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return out;
}

// Brute-force oracle in knn-mr's output encoding (testing/world.h):
// {point, rank, rect} with ranks by (distance, rect id).
std::vector<IdTuple> OracleTuples(const std::vector<Rect>& points,
                                  const std::vector<Rect>& rects, int k) {
  return KnnOracleTuples(points, rects, k);
}

// Single-node KnnJoin (queries/knn.h) re-encoded the same way.
std::vector<IdTuple> SingleNodeTuples(const std::vector<Rect>& points,
                                      const std::vector<Rect>& rects, int k) {
  return KnnSingleNodeTuples(points, rects, k, Rect(0, 0, 100, 100), 4, 4);
}

Query KnnQuery() { return MakeChainQuery(2, Predicate::Overlap()).value(); }

class KnnMrTest : public ::testing::TestWithParam<std::tuple<int, int>> {};
// Params: (k, seed).

TEST_P(KnnMrTest, MatchesOracleAndSingleNode) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = static_cast<uint64_t>(std::get<1>(GetParam()));
  const std::vector<std::vector<Rect>> data = {
      RandomPointRects(120, seed * 5 + 1), RandomRects(250, seed * 5 + 2)};
  const std::vector<IdTuple> oracle = OracleTuples(data[0], data[1], k);
  // Single-node and distributed must agree byte-for-byte with the oracle
  // (the (distance, rect id) tie-break makes top-k unique).
  EXPECT_EQ(SingleNodeTuples(data[0], data[1], k), oracle);

  // Several grid geometries, including the degenerate single reducer:
  // the output must not depend on partitioning.
  const int grid_cases[][2] = {{1, 1}, {1, 4}, {3, 3}, {5, 2}};
  for (const auto& grid : grid_cases) {
    RunnerOptions options;
    options.grid_rows = grid[0];
    options.grid_cols = grid[1];
    options.space = Rect(0, 0, 100, 100);
    const auto result = RunKnnJoinMr(KnnQuery(), data, k, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tuples, oracle)
        << "grid " << grid[0] << "x" << grid[1] << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, KnnMrTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Range(0, 4)));

TEST(KnnMrEdgeTest, KGreaterThanRectCount) {
  // Every cell is under-populated: round 1 emits unbounded cells, round 2
  // replicates those points everywhere, and every rect is a neighbor.
  const std::vector<std::vector<Rect>> data = {RandomPointRects(30, 9),
                                               RandomRects(5, 10)};
  RunnerOptions options;
  const auto result = RunKnnJoinMr(KnnQuery(), data, 10, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().tuples, OracleTuples(data[0], data[1], 10));
  EXPECT_EQ(result.value().num_tuples,
            static_cast<int64_t>(data[0].size() * data[1].size()));
}

TEST(KnnMrEdgeTest, DuplicatePointsAndDuplicateRects) {
  // Duplicates at identical distances exercise the (distance, rect id)
  // tie-break: rect 1 and rect 2 are the same rectangle.
  std::vector<Rect> points = RandomPointRects(20, 11);
  points.push_back(points[0]);
  points.push_back(points[0]);
  std::vector<Rect> rects = RandomRects(12, 12);
  rects.push_back(rects[1]);
  const std::vector<std::vector<Rect>> data = {points, rects};
  for (const int k : {1, 3, 12}) {
    RunnerOptions options;
    const auto result = RunKnnJoinMr(KnnQuery(), data, k, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tuples, OracleTuples(points, rects, k)) << k;
  }
}

TEST(KnnMrEdgeTest, PointsOnRectangleCorners) {
  // Distance-zero ties between several rectangles sharing a corner point.
  const std::vector<Rect> rects = {
      Rect(10, 10, 20, 20), Rect(20, 20, 30, 30), Rect(10, 20, 20, 30),
      Rect(20, 10, 30, 20), Rect(70, 70, 80, 80)};
  const std::vector<Rect> points = {
      Rect::FromPoint(Point{20, 20}),  // Corner of four rects at once.
      Rect::FromPoint(Point{10, 10}), Rect::FromPoint(Point{80, 80}),
      Rect::FromPoint(Point{0, 0})};
  const std::vector<std::vector<Rect>> data = {points, rects};
  for (const int k : {1, 2, 4}) {
    RunnerOptions options;
    options.grid_rows = 3;
    options.grid_cols = 3;
    const auto result = RunKnnJoinMr(KnnQuery(), data, k, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tuples, OracleTuples(points, rects, k)) << k;
  }
}

TEST(KnnMrEdgeTest, EmptyInputs) {
  RunnerOptions options;
  const auto no_points = RunKnnJoinMr(
      KnnQuery(), {{}, RandomRects(5, 2)}, 3, options);
  ASSERT_TRUE(no_points.ok());
  EXPECT_TRUE(no_points.value().tuples.empty());
  const auto no_rects = RunKnnJoinMr(
      KnnQuery(), {RandomPointRects(4, 3), {}}, 3, options);
  ASSERT_TRUE(no_rects.ok());
  EXPECT_TRUE(no_rects.value().tuples.empty());
}

TEST(KnnMrRejectTest, InvalidArguments) {
  const std::vector<std::vector<Rect>> data = {RandomPointRects(4, 1),
                                               RandomRects(4, 2)};
  RunnerOptions options;
  EXPECT_FALSE(RunKnnJoinMr(KnnQuery(), data, 0, options).ok());
  EXPECT_FALSE(RunKnnJoinMr(KnnQuery(), data, -3, options).ok());
  // 3-relation query / dataset count mismatch.
  const Query chain3 = MakeChainQuery(3, Predicate::Overlap()).value();
  EXPECT_FALSE(RunKnnJoinMr(chain3, data, 2, options).ok());
  // Relation 0 must be degenerate points.
  EXPECT_FALSE(RunKnnJoinMr(KnnQuery(), {data[1], data[1]}, 2, options).ok());
  RunnerOptions count_only = options;
  count_only.count_only = true;
  EXPECT_FALSE(RunKnnJoinMr(KnnQuery(), data, 2, count_only).ok());
  RunnerOptions distinct = options;
  distinct.distinct_ids = true;
  EXPECT_FALSE(RunKnnJoinMr(KnnQuery(), data, 2, distinct).ok());
}

TEST(KnnMrSchedulerTest, ConcurrentSubmissionsThroughScheduler) {
  const std::vector<std::vector<Rect>> data = {RandomPointRects(60, 31),
                                               RandomRects(120, 32)};
  const std::vector<IdTuple> oracle3 = OracleTuples(data[0], data[1], 3);
  const std::vector<IdTuple> oracle7 = OracleTuples(data[0], data[1], 7);

  SchedulerOptions sched_options;
  sched_options.max_in_flight = 2;
  JobScheduler scheduler(sched_options);

  JobSpec spec3 = MakeKnnMrJobSpec(KnnQuery(), 3);
  spec3.borrowed_relations = &data;
  JobSpec spec7 = MakeKnnMrJobSpec(KnnQuery(), 7);
  spec7.borrowed_relations = &data;
  auto h3 = scheduler.Submit(std::move(spec3));
  auto h7 = scheduler.Submit(std::move(spec7));
  ASSERT_TRUE(h3.ok());
  ASSERT_TRUE(h7.ok());
  const auto& r3 = h3.value().Wait();
  const auto& r7 = h7.value().Wait();
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  ASSERT_TRUE(r7.ok()) << r7.status().ToString();
  EXPECT_EQ(r3.value().tuples, oracle3);
  EXPECT_EQ(r7.value().tuples, oracle7);
  // Scheduled jobs carry their submission id in the per-job stats.
  for (const JobStats& job : r3.value().stats.jobs) {
    EXPECT_EQ(job.job_id, h3.value().id());
  }
}

TEST(KnnMrCatalogTest, GridAndBoundsArtifactsAreReused) {
  auto catalog = std::make_unique<DatasetCatalog>();
  catalog->PutDataset("points", RandomPointRects(80, 41));
  catalog->PutDataset("rects", RandomRects(200, 42));

  SchedulerOptions sched_options;
  sched_options.catalog = catalog.get();
  sched_options.max_in_flight = 1;
  JobScheduler scheduler(sched_options);

  auto submit = [&] {
    JobSpec spec = MakeKnnMrJobSpec(KnnQuery(), 4);
    spec.dataset_names = {"points", "rects"};
    StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
    EXPECT_TRUE(handle.ok());
    return handle.value().Take();
  };
  const StatusOr<JoinRunResult> first = submit();
  const StatusOr<JoinRunResult> second = submit();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value().tuples, second.value().tuples);
  EXPECT_FALSE(first.value().tuples.empty());

  // Cold run: 3 jobs (bound, join, merge), all artifact lookups miss.
  ASSERT_EQ(first.value().stats.jobs.size(), 3u);
  EXPECT_EQ(first.value().stats.catalog_hits, 0);
  EXPECT_GT(first.value().stats.catalog_misses, 0);
  // Warm run: the resident grid and per-cell bounds skip round 1.
  ASSERT_EQ(second.value().stats.jobs.size(), 2u);
  EXPECT_GE(second.value().stats.catalog_hits, 2);
  EXPECT_EQ(second.value().stats.jobs[0].job_name, "knn_mr_round2_join");
}

TEST(KnnMrStatsTest, CountersAndExplainReport) {
  const std::vector<std::vector<Rect>> data = {RandomPointRects(150, 51),
                                               RandomRects(900, 52)};
  RunnerOptions options;
  options.grid_rows = 4;
  options.grid_cols = 4;
  const auto result = RunKnnJoinMr(KnnQuery(), data, 3, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  int64_t points = 0;
  int64_t point_copies = 0;
  int64_t candidates = 0;
  for (const JobStats& job : result.value().stats.jobs) {
    const auto get = [&job](const char* name) {
      const auto it = job.user_counters.find(name);
      return it != job.user_counters.end() ? it->second : int64_t{0};
    };
    points += get(kCounterKnnPoints);
    point_copies += get(kCounterKnnPointCopies);
    candidates += get(kCounterKnnCandidates);
  }
  EXPECT_EQ(points, static_cast<int64_t>(data[0].size()));
  EXPECT_GE(point_copies, points);
  // Dense data keeps the bounds tight: nowhere near points x 16 cells.
  EXPECT_LT(point_copies, static_cast<int64_t>(data[0].size()) * 8);
  EXPECT_GE(candidates, result.value().num_tuples);

  const std::string report =
      ExplainRun(KnnQuery(), result.value());
  EXPECT_NE(report.find("knn: replication factor"), std::string::npos);
  EXPECT_NE(report.find("bound tightness"), std::string::npos);
  EXPECT_NE(report.find("knn_mr_round2_join"), std::string::npos);
}

}  // namespace
}  // namespace mwsj
