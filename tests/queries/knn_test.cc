// Exact kNN query vs. nested-loop reference.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "queries/knn.h"

namespace mwsj {
namespace {

std::vector<Point> RandomPoints(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Point> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Point{rng.Uniform(0, space), rng.Uniform(0, space)});
  }
  return out;
}

std::vector<Rect> RandomRects(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 8);
    const double b = rng.Uniform(0, 8);
    out.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return out;
}

std::vector<std::vector<KnnNeighbor>> Reference(
    const std::vector<Point>& points, const std::vector<Rect>& rects, int k) {
  std::vector<std::vector<KnnNeighbor>> out(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<KnnNeighbor> all;
    all.reserve(rects.size());
    for (size_t r = 0; r < rects.size(); ++r) {
      all.push_back(KnnNeighbor{static_cast<int64_t>(r),
                                MinDistance(rects[r], points[p])});
    }
    std::sort(all.begin(), all.end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.rect_id < b.rect_id;
              });
    if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
    out[p] = std::move(all);
  }
  return out;
}

class KnnTest : public ::testing::TestWithParam<std::tuple<int, int>> {};
// Params: (k, seed).

TEST_P(KnnTest, MatchesReference) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = static_cast<uint64_t>(std::get<1>(GetParam()));
  const auto points = RandomPoints(120, seed * 5 + 1);
  const auto rects = RandomRects(250, seed * 5 + 2);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto result = KnnJoin(grid, points, rects, k);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, k));
}

INSTANTIATE_TEST_SUITE_P(Sweeps, KnnTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Range(0, 4)));

TEST(KnnEdgeTest, FewerRectanglesThanK) {
  // Every cell is under-populated: round 1 produces unbounded radii and
  // the probe round must still find everything.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto points = RandomPoints(30, 9);
  const auto rects = RandomRects(5, 10);
  const auto result = KnnJoin(grid, points, rects, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, 10));
  for (const auto& nn : result.value().neighbors) {
    EXPECT_EQ(nn.size(), 5u);  // All rectangles are neighbors.
  }
}

TEST(KnnEdgeTest, PointInsideRectangleHasDistanceZero) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
  const std::vector<Point> points = {{10, 10}};
  const std::vector<Rect> rects = {Rect::FromXYLB(5, 15, 10, 10),
                                   Rect::FromXYLB(50, 60, 5, 5)};
  const auto result = KnnJoin(grid, points, rects, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().neighbors[0].size(), 1u);
  EXPECT_EQ(result.value().neighbors[0][0].rect_id, 0);
  EXPECT_DOUBLE_EQ(result.value().neighbors[0][0].distance, 0);
}

TEST(KnnEdgeTest, InvalidKAndEmptyInputs) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
  EXPECT_FALSE(KnnJoin(grid, {}, {}, 0).ok());
  const auto empty = KnnJoin(grid, {}, RandomRects(5, 2), 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().neighbors.empty());
  const auto no_rects = KnnJoin(grid, RandomPoints(4, 3), {}, 3);
  ASSERT_TRUE(no_rects.ok());
  for (const auto& nn : no_rects.value().neighbors) EXPECT_TRUE(nn.empty());
}

TEST(KnnStatsTest, BoundedProbeShipsFewerPointsThanUnbounded) {
  // With dense data the round-1 bound localizes the probe: round-2 point
  // copies stay far below points x cells.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto points = RandomPoints(200, 20);
  const auto rects = RandomRects(2000, 21);
  const auto result = KnnJoin(grid, points, rects, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().stats.jobs.size(), 3u);
  const int64_t probe_records =
      result.value().stats.jobs[1].intermediate_records;
  // 200 points x 16 cells would be 3200 point copies alone (plus rects).
  EXPECT_LT(probe_records, 2000 + 200 * 4);
}

}  // namespace
}  // namespace mwsj
