// Exact kNN query vs. nested-loop reference.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "common/random.h"
#include "queries/knn.h"

namespace mwsj {
namespace {

std::vector<Point> RandomPoints(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Point> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Point{rng.Uniform(0, space), rng.Uniform(0, space)});
  }
  return out;
}

std::vector<Rect> RandomRects(int n, uint64_t seed, double space = 100) {
  Rng rng(seed);
  std::vector<Rect> out;
  for (int i = 0; i < n; ++i) {
    const double l = rng.Uniform(0, 8);
    const double b = rng.Uniform(0, 8);
    out.push_back(
        Rect::FromXYLB(rng.Uniform(0, space - l), rng.Uniform(b, space), l, b));
  }
  return out;
}

std::vector<std::vector<KnnNeighbor>> Reference(
    const std::vector<Point>& points, const std::vector<Rect>& rects, int k) {
  std::vector<std::vector<KnnNeighbor>> out(points.size());
  for (size_t p = 0; p < points.size(); ++p) {
    std::vector<KnnNeighbor> all;
    all.reserve(rects.size());
    for (size_t r = 0; r < rects.size(); ++r) {
      all.push_back(KnnNeighbor{static_cast<int64_t>(r),
                                MinDistance(rects[r], points[p])});
    }
    std::sort(all.begin(), all.end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.rect_id < b.rect_id;
              });
    if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
    out[p] = std::move(all);
  }
  return out;
}

class KnnTest : public ::testing::TestWithParam<std::tuple<int, int>> {};
// Params: (k, seed).

TEST_P(KnnTest, MatchesReference) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = static_cast<uint64_t>(std::get<1>(GetParam()));
  const auto points = RandomPoints(120, seed * 5 + 1);
  const auto rects = RandomRects(250, seed * 5 + 2);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto result = KnnJoin(grid, points, rects, k);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, k));
}

INSTANTIATE_TEST_SUITE_P(Sweeps, KnnTest,
                         ::testing::Combine(::testing::Values(1, 3, 8),
                                            ::testing::Range(0, 4)));

TEST(KnnEdgeTest, FewerRectanglesThanK) {
  // Every cell is under-populated: round 1 produces unbounded radii and
  // the probe round must still find everything.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto points = RandomPoints(30, 9);
  const auto rects = RandomRects(5, 10);
  const auto result = KnnJoin(grid, points, rects, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, 10));
  for (const auto& nn : result.value().neighbors) {
    EXPECT_EQ(nn.size(), 5u);  // All rectangles are neighbors.
  }
}

TEST(KnnEdgeTest, PointInsideRectangleHasDistanceZero) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
  const std::vector<Point> points = {{10, 10}};
  const std::vector<Rect> rects = {Rect::FromXYLB(5, 15, 10, 10),
                                   Rect::FromXYLB(50, 60, 5, 5)};
  const auto result = KnnJoin(grid, points, rects, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().neighbors[0].size(), 1u);
  EXPECT_EQ(result.value().neighbors[0][0].rect_id, 0);
  EXPECT_DOUBLE_EQ(result.value().neighbors[0][0].distance, 0);
}

TEST(KnnEdgeTest, InvalidKAndEmptyInputs) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
  EXPECT_FALSE(KnnJoin(grid, {}, {}, 0).ok());
  const auto empty = KnnJoin(grid, {}, RandomRects(5, 2), 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().neighbors.empty());
  const auto no_rects = KnnJoin(grid, RandomPoints(4, 3), {}, 3);
  ASSERT_TRUE(no_rects.ok());
  for (const auto& nn : no_rects.value().neighbors) EXPECT_TRUE(nn.empty());
}

TEST(KnnTieBreakTest, DuplicateRectanglesAtIdenticalDistanceTruncateById) {
  // Regression for the deterministic k-truncation contract: four copies of
  // one rectangle sit at the same exact distance and k cuts inside the
  // tie, so the merge round must keep the lowest rect ids — on every grid
  // geometry, including the single cell.
  const std::vector<Point> points = {{50, 50}};
  const Rect dup = Rect::FromXYLB(60, 57, 2, 2);   // Distance 10 from (50,50).
  const Rect closer = Rect::FromXYLB(53, 52, 2, 2);  // Distance 3.
  const std::vector<Rect> rects = {dup, dup, closer, dup, dup};
  for (const auto& [rows, cols] : {std::pair{1, 1}, {2, 2}, {4, 4}}) {
    const GridPartition grid =
        GridPartition::Create(Rect(0, 0, 100, 100), rows, cols).value();
    const auto result = KnnJoin(grid, points, rects, 3);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().neighbors, Reference(points, rects, 3));
    const auto& nn = result.value().neighbors[0];
    ASSERT_EQ(nn.size(), 3u);
    EXPECT_EQ(nn[0].rect_id, 2);  // The closer rectangle.
    EXPECT_EQ(nn[1].rect_id, 0);  // Then the tie, cut by ascending id:
    EXPECT_EQ(nn[2].rect_id, 1);  // copies 3 and 4 fall off the k edge.
    EXPECT_DOUBLE_EQ(nn[1].distance, nn[2].distance);
  }
}

TEST(KnnPropertyTest, DuplicatePointsGetIdenticalNeighborLists) {
  auto points = RandomPoints(60, 14);
  points.push_back(points[0]);
  points.push_back(points[0]);
  const auto rects = RandomRects(120, 15);
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 3, 3).value();
  const auto result = KnnJoin(grid, points, rects, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, 4));
  const auto& nn = result.value().neighbors;
  EXPECT_EQ(nn[0], nn[nn.size() - 1]);
  EXPECT_EQ(nn[0], nn[nn.size() - 2]);
}

TEST(KnnPropertyTest, PointsOnRectangleCornersBreakZeroDistanceTiesById) {
  // A point on the shared corner of four rectangles is at distance zero
  // from all of them; k=2 must keep ids 0 and 1. The corner lies on a
  // 2x2 cell boundary, stressing the boundary owner rule too.
  const std::vector<Point> points = {{50, 50}, {0, 0}, {100, 100}};
  const std::vector<Rect> rects = {
      Rect(40, 40, 50, 50), Rect(50, 50, 60, 60), Rect(40, 50, 50, 60),
      Rect(50, 40, 60, 50), Rect(0, 0, 5, 5)};
  for (const int k : {1, 2, 4}) {
    const GridPartition grid =
        GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
    const auto result = KnnJoin(grid, points, rects, k);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().neighbors, Reference(points, rects, k)) << k;
    EXPECT_EQ(result.value().neighbors[0][0].rect_id, 0) << k;
    EXPECT_DOUBLE_EQ(result.value().neighbors[0][0].distance, 0) << k;
  }
}

TEST(KnnPropertyTest, SparseCornerDataFallsBackToUnboundedProbe) {
  // All rectangles cluster in one corner, so most cells hold fewer than k
  // of them and round 1 emits the infinite-bound fallback; those points
  // must probe every cell and still match the oracle exactly.
  const auto points = RandomPoints(150, 16);
  const auto rects = RandomRects(6, 17, /*space=*/20);  // Corner cluster.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 5, 5).value();
  const auto result = KnnJoin(grid, points, rects, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, 4));
}

TEST(KnnPropertyTest, KOneBreaksExactTies) {
  // A point equidistant from two identical rectangles: k=1 keeps id 0.
  const std::vector<Point> points = {{50, 50}};
  const Rect r = Rect::FromXYLB(58, 52, 4, 4);
  const std::vector<Rect> rects = {r, r};
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 2, 2).value();
  const auto result = KnnJoin(grid, points, rects, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbors, Reference(points, rects, 1));
  ASSERT_EQ(result.value().neighbors[0].size(), 1u);
  EXPECT_EQ(result.value().neighbors[0][0].rect_id, 0);
}

TEST(KnnStatsTest, BoundedProbeShipsFewerPointsThanUnbounded) {
  // With dense data the round-1 bound localizes the probe: round-2 point
  // copies stay far below points x cells.
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 100, 100), 4, 4).value();
  const auto points = RandomPoints(200, 20);
  const auto rects = RandomRects(2000, 21);
  const auto result = KnnJoin(grid, points, rects, 3);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().stats.jobs.size(), 3u);
  const int64_t probe_records =
      result.value().stats.jobs[1].intermediate_records;
  // 200 points x 16 cells would be 3200 point copies alone (plus rects).
  EXPECT_LT(probe_records, 2000 + 200 * 4);
}

}  // namespace
}  // namespace mwsj
