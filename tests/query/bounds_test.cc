// C-Rep-L replication bounds: must reproduce the paper's §7.9 and §8
// chain formulas and generalize to arbitrary graphs.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "query/bounds.h"

namespace mwsj {
namespace {

TEST(BoundsTest, OverlapChainOfFourMatchesSection79) {
  // Q1: endpoints replicate within 2*d_max, middle relations within d_max.
  const Query q = MakeChainQuery(4, Predicate::Overlap()).value();
  const double dmax = 10;
  const auto bounds = ComputeReplicationBounds(q, dmax);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 2 * dmax);
  EXPECT_DOUBLE_EQ(bounds[1], dmax);
  EXPECT_DOUBLE_EQ(bounds[2], dmax);
  EXPECT_DOUBLE_EQ(bounds[3], 2 * dmax);
}

TEST(BoundsTest, RangeChainOfFourMatchesSection8) {
  // Figure 8: R1/R4 within 2*d_max + 3*d; R2/R3 within d_max + 2*d.
  const double d = 7;
  const double dmax = 10;
  const Query q = MakeChainQuery(4, Predicate::Range(d)).value();
  const auto bounds = ComputeReplicationBounds(q, dmax);
  EXPECT_DOUBLE_EQ(bounds[0], 2 * dmax + 3 * d);
  EXPECT_DOUBLE_EQ(bounds[1], dmax + 2 * d);
  EXPECT_DOUBLE_EQ(bounds[2], dmax + 2 * d);
  EXPECT_DOUBLE_EQ(bounds[3], 2 * dmax + 3 * d);
}

TEST(BoundsTest, TwoWayOverlapNeedsNoExtent) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  const auto bounds = ComputeReplicationBounds(q, 10.0);
  EXPECT_DOUBLE_EQ(bounds[0], 0);
  EXPECT_DOUBLE_EQ(bounds[1], 0);
}

TEST(BoundsTest, TwoWayRangeNeedsExactlyD) {
  const Query q = MakeChainQuery(2, Predicate::Range(42)).value();
  const auto bounds = ComputeReplicationBounds(q, 10.0);
  EXPECT_DOUBLE_EQ(bounds[0], 42);
  EXPECT_DOUBLE_EQ(bounds[1], 42);
}

TEST(BoundsTest, StarCenterIsCheaperThanLeaves) {
  QueryBuilder b;
  const int center = b.AddRelation("C");
  const int l1 = b.AddRelation("L1");
  const int l2 = b.AddRelation("L2");
  const int l3 = b.AddRelation("L3");
  b.AddOverlap(center, l1).AddOverlap(center, l2).AddOverlap(center, l3);
  const Query q = b.Build().value();
  const double dmax = 10;
  const auto bounds = ComputeReplicationBounds(q, dmax);
  // Center reaches any leaf in one hop: no intermediate rectangle.
  EXPECT_DOUBLE_EQ(bounds[static_cast<size_t>(center)], 0);
  // Leaves reach each other through the center: one intermediate.
  EXPECT_DOUBLE_EQ(bounds[static_cast<size_t>(l1)], dmax);
}

TEST(BoundsTest, CycleUsesShortestPath) {
  QueryBuilder b;
  const int r1 = b.AddRelation("R1");
  const int r2 = b.AddRelation("R2");
  const int r3 = b.AddRelation("R3");
  b.AddRange(r1, r2, 5).AddRange(r2, r3, 5).AddRange(r3, r1, 5);
  const Query q = b.Build().value();
  const auto bounds = ComputeReplicationBounds(q, 10.0);
  // Every pair is adjacent: one hop, no intermediates.
  for (double bound : bounds) EXPECT_DOUBLE_EQ(bound, 5);
}

TEST(BoundsTest, PerRelationDiagonalsTightenTheBound) {
  // Chain R1 - R2 - R3 where R2's rectangles are tiny: the endpoint bound
  // uses R2's diagonal, not the global maximum.
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<double> diagonals = {100, 1, 100};
  const auto bounds = ComputeReplicationBounds(q, diagonals);
  EXPECT_DOUBLE_EQ(bounds[0], 1);  // Through tiny R2 only.
  EXPECT_DOUBLE_EQ(bounds[2], 1);
  EXPECT_DOUBLE_EQ(bounds[1], 0);  // R2 touches both neighbors directly.
}

TEST(BoundsValidationTest, AcceptsOrdinaryQueries) {
  const Query q = MakeChainQuery(3, Predicate::Range(100)).value();
  EXPECT_TRUE(ValidateQueryBounds(q, Rect(0, 0, 1000, 1000)).ok());
  const Query ov = MakeChainQuery(4, Predicate::Overlap()).value();
  EXPECT_TRUE(ValidateQueryBounds(ov, Rect(-1e6, -1e6, 1e6, 1e6)).ok());
}

TEST(BoundsValidationTest, RejectsOverflowingRangeDistance) {
  // EnlargeByDistance(1e300) pushes corners to ±inf, which routes the
  // rectangle to no grid cell and silently drops its join results.
  const Query q = MakeChainQuery(3, Predicate::Range(1e300)).value();
  const Status s = ValidateQueryBounds(q, Rect(0, 0, 1000, 1000));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  const Query inf_q =
      MakeChainQuery(2, Predicate::Range(std::numeric_limits<double>::infinity()))
          .value();
  EXPECT_EQ(ValidateQueryBounds(inf_q, Rect(0, 0, 1, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(BoundsValidationTest, RejectsNearDblMaxDataExtent) {
  // Even with modest distances, inputs near DBL_MAX overflow the summed
  // replication bounds (edge weight + diagonal chains).
  const Query q = MakeChainQuery(3, Predicate::Range(10)).value();
  const Rect huge(-1e308, -1e308, 1e308, 1e308);  // Diagonal overflows.
  EXPECT_EQ(ValidateQueryBounds(q, huge).code(),
            StatusCode::kInvalidArgument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ValidateQueryBounds(q, Rect(nan, 0, 1, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(BoundsValidationTest, BoundaryDistanceIsAccepted) {
  const Query q = MakeChainQuery(2, Predicate::Range(kMaxQueryDistance)).value();
  EXPECT_TRUE(ValidateQueryBounds(q, Rect(0, 0, 1, 1)).ok());
  const Query over =
      MakeChainQuery(2, Predicate::Range(std::nextafter(kMaxQueryDistance,
                                                        1e308)))
          .value();
  EXPECT_EQ(ValidateQueryBounds(over, Rect(0, 0, 1, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(BoundsTest, HybridChainAddsOnlyRangeWeights) {
  // R1 Ov R2 ∧ R2 Ra(d) R3 (the paper's Q4 shape).
  QueryBuilder b;
  const int r1 = b.AddRelation("R1");
  const int r2 = b.AddRelation("R2");
  const int r3 = b.AddRelation("R3");
  b.AddOverlap(r1, r2).AddRange(r2, r3, 200);
  const Query q = b.Build().value();
  const double dmax = 10;
  const auto bounds = ComputeReplicationBounds(q, dmax);
  EXPECT_DOUBLE_EQ(bounds[0], dmax + 200);  // Through R2 to R3.
  EXPECT_DOUBLE_EQ(bounds[1], 200);         // Direct Ra edge dominates.
  EXPECT_DOUBLE_EQ(bounds[2], 200 + dmax);
}

}  // namespace
}  // namespace mwsj
