// C-Rep-L replication bounds: must reproduce the paper's §7.9 and §8
// chain formulas and generalize to arbitrary graphs.

#include <gtest/gtest.h>

#include "query/bounds.h"

namespace mwsj {
namespace {

TEST(BoundsTest, OverlapChainOfFourMatchesSection79) {
  // Q1: endpoints replicate within 2*d_max, middle relations within d_max.
  const Query q = MakeChainQuery(4, Predicate::Overlap()).value();
  const double dmax = 10;
  const auto bounds = ComputeReplicationBounds(q, dmax);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 2 * dmax);
  EXPECT_DOUBLE_EQ(bounds[1], dmax);
  EXPECT_DOUBLE_EQ(bounds[2], dmax);
  EXPECT_DOUBLE_EQ(bounds[3], 2 * dmax);
}

TEST(BoundsTest, RangeChainOfFourMatchesSection8) {
  // Figure 8: R1/R4 within 2*d_max + 3*d; R2/R3 within d_max + 2*d.
  const double d = 7;
  const double dmax = 10;
  const Query q = MakeChainQuery(4, Predicate::Range(d)).value();
  const auto bounds = ComputeReplicationBounds(q, dmax);
  EXPECT_DOUBLE_EQ(bounds[0], 2 * dmax + 3 * d);
  EXPECT_DOUBLE_EQ(bounds[1], dmax + 2 * d);
  EXPECT_DOUBLE_EQ(bounds[2], dmax + 2 * d);
  EXPECT_DOUBLE_EQ(bounds[3], 2 * dmax + 3 * d);
}

TEST(BoundsTest, TwoWayOverlapNeedsNoExtent) {
  const Query q = MakeChainQuery(2, Predicate::Overlap()).value();
  const auto bounds = ComputeReplicationBounds(q, 10.0);
  EXPECT_DOUBLE_EQ(bounds[0], 0);
  EXPECT_DOUBLE_EQ(bounds[1], 0);
}

TEST(BoundsTest, TwoWayRangeNeedsExactlyD) {
  const Query q = MakeChainQuery(2, Predicate::Range(42)).value();
  const auto bounds = ComputeReplicationBounds(q, 10.0);
  EXPECT_DOUBLE_EQ(bounds[0], 42);
  EXPECT_DOUBLE_EQ(bounds[1], 42);
}

TEST(BoundsTest, StarCenterIsCheaperThanLeaves) {
  QueryBuilder b;
  const int center = b.AddRelation("C");
  const int l1 = b.AddRelation("L1");
  const int l2 = b.AddRelation("L2");
  const int l3 = b.AddRelation("L3");
  b.AddOverlap(center, l1).AddOverlap(center, l2).AddOverlap(center, l3);
  const Query q = b.Build().value();
  const double dmax = 10;
  const auto bounds = ComputeReplicationBounds(q, dmax);
  // Center reaches any leaf in one hop: no intermediate rectangle.
  EXPECT_DOUBLE_EQ(bounds[static_cast<size_t>(center)], 0);
  // Leaves reach each other through the center: one intermediate.
  EXPECT_DOUBLE_EQ(bounds[static_cast<size_t>(l1)], dmax);
}

TEST(BoundsTest, CycleUsesShortestPath) {
  QueryBuilder b;
  const int r1 = b.AddRelation("R1");
  const int r2 = b.AddRelation("R2");
  const int r3 = b.AddRelation("R3");
  b.AddRange(r1, r2, 5).AddRange(r2, r3, 5).AddRange(r3, r1, 5);
  const Query q = b.Build().value();
  const auto bounds = ComputeReplicationBounds(q, 10.0);
  // Every pair is adjacent: one hop, no intermediates.
  for (double bound : bounds) EXPECT_DOUBLE_EQ(bound, 5);
}

TEST(BoundsTest, PerRelationDiagonalsTightenTheBound) {
  // Chain R1 - R2 - R3 where R2's rectangles are tiny: the endpoint bound
  // uses R2's diagonal, not the global maximum.
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<double> diagonals = {100, 1, 100};
  const auto bounds = ComputeReplicationBounds(q, diagonals);
  EXPECT_DOUBLE_EQ(bounds[0], 1);  // Through tiny R2 only.
  EXPECT_DOUBLE_EQ(bounds[2], 1);
  EXPECT_DOUBLE_EQ(bounds[1], 0);  // R2 touches both neighbors directly.
}

TEST(BoundsTest, HybridChainAddsOnlyRangeWeights) {
  // R1 Ov R2 ∧ R2 Ra(d) R3 (the paper's Q4 shape).
  QueryBuilder b;
  const int r1 = b.AddRelation("R1");
  const int r2 = b.AddRelation("R2");
  const int r3 = b.AddRelation("R3");
  b.AddOverlap(r1, r2).AddRange(r2, r3, 200);
  const Query q = b.Build().value();
  const double dmax = 10;
  const auto bounds = ComputeReplicationBounds(q, dmax);
  EXPECT_DOUBLE_EQ(bounds[0], dmax + 200);  // Through R2 to R3.
  EXPECT_DOUBLE_EQ(bounds[1], 200);         // Direct Ra edge dominates.
  EXPECT_DOUBLE_EQ(bounds[2], 200 + dmax);
}

}  // namespace
}  // namespace mwsj
