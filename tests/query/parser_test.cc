// Textual query parser tests.

#include <gtest/gtest.h>

#include "query/parser.h"

namespace mwsj {
namespace {

TEST(ParserTest, ParsesPaperQ2) {
  const auto q = ParseQuery("R1 OV R2 AND R2 OV R3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().num_relations(), 3);
  EXPECT_TRUE(q.value().IsOverlapOnly());
  EXPECT_EQ(q.value().ToString(), "R1 Ov R2 AND R2 Ov R3");
}

TEST(ParserTest, ParsesPaperQ3WithDistances) {
  const auto q = ParseQuery("R1 RA(100) R2 AND R2 RA(100) R3");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().IsRangeOnly());
  EXPECT_DOUBLE_EQ(q.value().MaxRangeDistance(), 100);
}

TEST(ParserTest, ParsesPaperQ4Hybrid) {
  const auto q = ParseQuery("R1 OV R2 AND R2 RA(200) R3");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q.value().IsOverlapOnly());
  EXPECT_FALSE(q.value().IsRangeOnly());
}

TEST(ParserTest, KeywordsAreCaseInsensitiveAndAliased) {
  EXPECT_TRUE(ParseQuery("a overlaps b and b range(5) c").ok());
  EXPECT_TRUE(ParseQuery("a Ov b AND b Ra(5.5) c").ok());
}

TEST(ParserTest, RepeatedNamesReuseRelations) {
  const auto q = ParseQuery("city OV forest AND forest OV river");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().num_relations(), 3);
  EXPECT_EQ(q.value().relation_names()[1], "forest");
}

TEST(ParserTest, WhitespaceIsFlexible) {
  EXPECT_TRUE(ParseQuery("  R1   OV R2   AND R2 RA( 7 )  R3 ").ok());
}

TEST(ParserTest, SyntaxErrorsCarryOffsets) {
  const auto missing_rel = ParseQuery("R1 OV");
  EXPECT_FALSE(missing_rel.ok());
  EXPECT_NE(missing_rel.status().message().find("offset"), std::string::npos);

  EXPECT_FALSE(ParseQuery("R1 NEAR R2").ok());        // Unknown predicate.
  EXPECT_FALSE(ParseQuery("R1 RA R2").ok());          // Missing (d).
  EXPECT_FALSE(ParseQuery("R1 RA(x) R2").ok());       // Bad number.
  EXPECT_FALSE(ParseQuery("R1 RA(5 R2").ok());        // Missing ')'.
  EXPECT_FALSE(ParseQuery("R1 RA(-3) R2").ok());      // Negative distance.
  EXPECT_FALSE(ParseQuery("R1 OV R2 OR R2 OV R3").ok());  // OR unsupported.
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(ParserTest, SemanticValidationStillApplies) {
  // Self-edge and disconnected graphs are rejected by the builder.
  EXPECT_FALSE(ParseQuery("R1 OV R1").ok());
  EXPECT_FALSE(ParseQuery("A OV B AND C OV D").ok());
}

}  // namespace
}  // namespace mwsj
