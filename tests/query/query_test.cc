// Query model: builder validation, predicates, join-graph structure.

#include <gtest/gtest.h>

#include "query/query.h"

namespace mwsj {
namespace {

TEST(PredicateTest, OverlapEvaluation) {
  const Predicate p = Predicate::Overlap();
  EXPECT_TRUE(p.is_overlap());
  EXPECT_DOUBLE_EQ(p.distance(), 0);
  EXPECT_TRUE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                         Rect::FromXYLB(0.5, 1, 1, 1)));
  EXPECT_FALSE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                          Rect::FromXYLB(5, 1, 1, 1)));
  EXPECT_EQ(p.ToString(), "Ov");
}

TEST(PredicateTest, RangeEvaluation) {
  const Predicate p = Predicate::Range(2.0);
  EXPECT_TRUE(p.is_range());
  EXPECT_DOUBLE_EQ(p.distance(), 2.0);
  EXPECT_TRUE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                         Rect::FromXYLB(3, 1, 1, 1)));  // Exactly 2 apart.
  EXPECT_FALSE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                          Rect::FromXYLB(3.5, 1, 1, 1)));
  EXPECT_EQ(p.ToString(), "Ra(2)");
}

TEST(QueryBuilderTest, BuildsValidChain) {
  QueryBuilder b;
  const int r1 = b.AddRelation("city");
  const int r2 = b.AddRelation("forest");
  const int r3 = b.AddRelation("river");
  b.AddOverlap(r1, r2).AddRange(r2, r3, 100);
  const auto q = b.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().num_relations(), 3);
  EXPECT_EQ(q.value().conditions().size(), 2u);
  EXPECT_EQ(q.value().ToString(), "city Ov forest AND forest Ra(100) river");
  EXPECT_FALSE(q.value().IsOverlapOnly());
  EXPECT_FALSE(q.value().IsRangeOnly());
  EXPECT_DOUBLE_EQ(q.value().MaxRangeDistance(), 100);
}

TEST(QueryBuilderTest, RejectsTooFewRelations) {
  QueryBuilder b;
  b.AddRelation("only");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsNoConditions) {
  QueryBuilder b;
  b.AddRelation("a");
  b.AddRelation("b");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsSelfEdge) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  b.AddRelation("b");
  b.AddOverlap(r1, r1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsOutOfRangeIndices) {
  QueryBuilder b;
  b.AddRelation("a");
  b.AddRelation("b");
  b.AddOverlap(0, 5);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsNegativeRangeDistance) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  const int r2 = b.AddRelation("b");
  b.AddRange(r1, r2, -1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsDisconnectedGraph) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  const int r2 = b.AddRelation("b");
  const int r3 = b.AddRelation("c");
  const int r4 = b.AddRelation("d");
  b.AddOverlap(r1, r2).AddOverlap(r3, r4);  // Two components.
  const auto q = b.Build();
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, AdjacencyListsConditionIndices) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  const int r2 = b.AddRelation("b");
  const int r3 = b.AddRelation("c");
  b.AddOverlap(r1, r2).AddOverlap(r2, r3);
  const Query q = b.Build().value();
  EXPECT_EQ(q.ConditionsOf(0), (std::vector<int>{0}));
  EXPECT_EQ(q.ConditionsOf(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(q.ConditionsOf(2), (std::vector<int>{1}));
  EXPECT_TRUE(q.conditions()[0].Connects(0, 1));
  EXPECT_TRUE(q.conditions()[0].Connects(1, 0));
  EXPECT_FALSE(q.conditions()[0].Connects(0, 2));
}

TEST(QueryTest, MatchesEvaluatesFullAssignments) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(0.5, 1, 1, 1);
  const Rect c = Rect::FromXYLB(1.2, 1, 1, 1);
  EXPECT_TRUE(q.Matches({a, b, c}));       // a-b and b-c overlap.
  EXPECT_FALSE(q.Matches({a, c, b}));      // a and c do not overlap.
  const Rect far = Rect::FromXYLB(50, 1, 1, 1);
  EXPECT_FALSE(q.Matches({a, b, far}));
}

TEST(QueryTest, MakeChainQueryShapes) {
  const Query q2 = MakeChainQuery(3, Predicate::Overlap()).value();
  EXPECT_TRUE(q2.IsOverlapOnly());
  EXPECT_EQ(q2.conditions().size(), 2u);
  const Query q3 = MakeChainQuery(4, Predicate::Range(100)).value();
  EXPECT_TRUE(q3.IsRangeOnly());
  EXPECT_EQ(q3.conditions().size(), 3u);
  EXPECT_FALSE(MakeChainQuery(1, Predicate::Overlap()).ok());
}

}  // namespace
}  // namespace mwsj
