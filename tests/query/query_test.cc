// Query model: builder validation, predicates, join-graph structure.

#include <gtest/gtest.h>

#include "query/query.h"

namespace mwsj {
namespace {

TEST(PredicateTest, OverlapEvaluation) {
  const Predicate p = Predicate::Overlap();
  EXPECT_TRUE(p.is_overlap());
  EXPECT_DOUBLE_EQ(p.distance(), 0);
  EXPECT_TRUE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                         Rect::FromXYLB(0.5, 1, 1, 1)));
  EXPECT_FALSE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                          Rect::FromXYLB(5, 1, 1, 1)));
  EXPECT_EQ(p.ToString(), "Ov");
}

TEST(PredicateTest, RangeEvaluation) {
  const Predicate p = Predicate::Range(2.0);
  EXPECT_TRUE(p.is_range());
  EXPECT_DOUBLE_EQ(p.distance(), 2.0);
  EXPECT_TRUE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                         Rect::FromXYLB(3, 1, 1, 1)));  // Exactly 2 apart.
  EXPECT_FALSE(p.Evaluate(Rect::FromXYLB(0, 1, 1, 1),
                          Rect::FromXYLB(3.5, 1, 1, 1)));
  EXPECT_EQ(p.ToString(), "Ra(2)");
}

TEST(QueryBuilderTest, BuildsValidChain) {
  QueryBuilder b;
  const int r1 = b.AddRelation("city");
  const int r2 = b.AddRelation("forest");
  const int r3 = b.AddRelation("river");
  b.AddOverlap(r1, r2).AddRange(r2, r3, 100);
  const auto q = b.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().num_relations(), 3);
  EXPECT_EQ(q.value().conditions().size(), 2u);
  EXPECT_EQ(q.value().ToString(), "city Ov forest AND forest Ra(100) river");
  EXPECT_FALSE(q.value().IsOverlapOnly());
  EXPECT_FALSE(q.value().IsRangeOnly());
  EXPECT_DOUBLE_EQ(q.value().MaxRangeDistance(), 100);
}

TEST(QueryBuilderTest, RejectsTooFewRelations) {
  QueryBuilder b;
  b.AddRelation("only");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsNoConditions) {
  QueryBuilder b;
  b.AddRelation("a");
  b.AddRelation("b");
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsSelfEdge) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  b.AddRelation("b");
  b.AddOverlap(r1, r1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsOutOfRangeIndices) {
  QueryBuilder b;
  b.AddRelation("a");
  b.AddRelation("b");
  b.AddOverlap(0, 5);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsNegativeRangeDistance) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  const int r2 = b.AddRelation("b");
  b.AddRange(r1, r2, -1);
  EXPECT_FALSE(b.Build().ok());
}

TEST(QueryBuilderTest, RejectsDisconnectedGraph) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  const int r2 = b.AddRelation("b");
  const int r3 = b.AddRelation("c");
  const int r4 = b.AddRelation("d");
  b.AddOverlap(r1, r2).AddOverlap(r3, r4);  // Two components.
  const auto q = b.Build();
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, AdjacencyListsConditionIndices) {
  QueryBuilder b;
  const int r1 = b.AddRelation("a");
  const int r2 = b.AddRelation("b");
  const int r3 = b.AddRelation("c");
  b.AddOverlap(r1, r2).AddOverlap(r2, r3);
  const Query q = b.Build().value();
  EXPECT_EQ(q.ConditionsOf(0), (std::vector<int>{0}));
  EXPECT_EQ(q.ConditionsOf(1), (std::vector<int>{0, 1}));
  EXPECT_EQ(q.ConditionsOf(2), (std::vector<int>{1}));
  EXPECT_TRUE(q.conditions()[0].Connects(0, 1));
  EXPECT_TRUE(q.conditions()[0].Connects(1, 0));
  EXPECT_FALSE(q.conditions()[0].Connects(0, 2));
}

TEST(QueryTest, MatchesEvaluatesFullAssignments) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const Rect a = Rect::FromXYLB(0, 1, 1, 1);
  const Rect b = Rect::FromXYLB(0.5, 1, 1, 1);
  const Rect c = Rect::FromXYLB(1.2, 1, 1, 1);
  EXPECT_TRUE(q.Matches({a, b, c}));       // a-b and b-c overlap.
  EXPECT_FALSE(q.Matches({a, c, b}));      // a and c do not overlap.
  const Rect far = Rect::FromXYLB(50, 1, 1, 1);
  EXPECT_FALSE(q.Matches({a, b, far}));
}

TEST(QueryTest, MakeChainQueryShapes) {
  const Query q2 = MakeChainQuery(3, Predicate::Overlap()).value();
  EXPECT_TRUE(q2.IsOverlapOnly());
  EXPECT_EQ(q2.conditions().size(), 2u);
  const Query q3 = MakeChainQuery(4, Predicate::Range(100)).value();
  EXPECT_TRUE(q3.IsRangeOnly());
  EXPECT_EQ(q3.conditions().size(), 3u);
  EXPECT_FALSE(MakeChainQuery(1, Predicate::Overlap()).ok());
}

TEST(QueryCanonicalTest, EquivalentSpellingsShareOneKey) {
  // The same chain R1 -Ov- R2 -Ra(5)- R3 spelled three ways: relations
  // registered in a different order, condition endpoints swapped (both
  // predicates are symmetric), and the condition list reordered.
  QueryBuilder b1;
  const int a1 = b1.AddRelation("R1");
  const int b1r = b1.AddRelation("R2");
  const int c1 = b1.AddRelation("R3");
  b1.AddOverlap(a1, b1r).AddRange(b1r, c1, 5.0);
  const Query spelled1 = b1.Build().value();

  QueryBuilder b2;
  const int c2 = b2.AddRelation("R3");
  const int b2r = b2.AddRelation("R2");
  const int a2 = b2.AddRelation("R1");
  b2.AddRange(c2, b2r, 5.0).AddOverlap(b2r, a2);
  const Query spelled2 = b2.Build().value();

  EXPECT_EQ(spelled1.CanonicalForm(), spelled2.CanonicalForm());
  EXPECT_EQ(spelled1.CanonicalHash(), spelled2.CanonicalHash());
  EXPECT_EQ(spelled1.CanonicalKey(), spelled2.CanonicalKey());
}

TEST(QueryCanonicalTest, DistinctQueriesRenderDistinctForms) {
  auto chain = [](Predicate predicate) {
    return MakeChainQuery(3, predicate).value();
  };
  const Query overlap = chain(Predicate::Overlap());
  const Query range5 = chain(Predicate::Range(5.0));
  const Query range5eps = chain(Predicate::Range(5.0 + 1e-13));
  EXPECT_NE(overlap.CanonicalForm(), range5.CanonicalForm());
  // Full-precision distances: nearby but distinct d never alias.
  EXPECT_NE(range5.CanonicalForm(), range5eps.CanonicalForm());

  // Same shape, different relation names.
  QueryBuilder other_names;
  const int x = other_names.AddRelation("lakes");
  const int y = other_names.AddRelation("roads");
  const int z = other_names.AddRelation("parks");
  other_names.AddOverlap(x, y).AddOverlap(y, z);
  EXPECT_NE(other_names.Build().value().CanonicalForm(),
            overlap.CanonicalForm());

  // Same relations, different join-graph structure (chain vs. star from
  // relation 0).
  QueryBuilder star;
  const int s1 = star.AddRelation("R1");
  const int s2 = star.AddRelation("R2");
  const int s3 = star.AddRelation("R3");
  star.AddOverlap(s1, s2).AddOverlap(s1, s3);
  EXPECT_NE(star.Build().value().CanonicalForm(), overlap.CanonicalForm());
}

TEST(QueryCanonicalTest, NamesCannotForgeSeparators) {
  // Length-prefixed names: a name containing the rendered separator
  // characters cannot collide with two differently-split names.
  QueryBuilder tricky;
  const int t1 = tricky.AddRelation("a,3:b");
  const int t2 = tricky.AddRelation("c");
  tricky.AddOverlap(t1, t2);

  QueryBuilder plain;
  const int p1 = plain.AddRelation("a");
  const int p2 = plain.AddRelation("b,1:c");
  plain.AddOverlap(p1, p2);

  EXPECT_NE(tricky.Build().value().CanonicalForm(),
            plain.Build().value().CanonicalForm());
}

TEST(QueryCanonicalTest, KeyEmbedsTheHash) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::string key = q.CanonicalKey();
  EXPECT_EQ(key.find('q'), 0u);
  EXPECT_NE(key.find(q.CanonicalForm()), std::string::npos);
  EXPECT_EQ(q.CanonicalKey(), key);  // Deterministic.
}

TEST(QueryCanonicalTest, RanksRecoverThePositionBindingTheFormForgets) {
  // Two structurally different queries whose canonical forms collide:
  // chain A-B-C vs. the chain written B-A, B-C with relations registered
  // as [B, A, C]. Both render rels[A,B,C] conds[0 Ov 1, 1 Ov 2], but the
  // first binds position 1 to the chain's center while the second binds
  // position 0 — exactly the distinction CanonicalRanks() preserves.
  QueryBuilder chain;
  const int ca = chain.AddRelation("A");
  const int cb = chain.AddRelation("B");
  const int cc = chain.AddRelation("C");
  chain.AddOverlap(ca, cb).AddOverlap(cb, cc);
  const Query q1 = chain.Build().value();

  QueryBuilder relabeled;
  const int rb = relabeled.AddRelation("B");
  const int ra = relabeled.AddRelation("A");
  const int rc = relabeled.AddRelation("C");
  relabeled.AddOverlap(rb, ra).AddOverlap(rb, rc);
  const Query q2 = relabeled.Build().value();

  ASSERT_EQ(q1.CanonicalForm(), q2.CanonicalForm());
  EXPECT_EQ(q1.CanonicalRanks(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q2.CanonicalRanks(), (std::vector<int>{1, 0, 2}));

  // Self-join spelling of the same trap: one dataset under one name three
  // times, path centered at position 1 vs. position 0. Names and
  // signatures agree pairwise, so only the permutation tells them apart.
  QueryBuilder center1;
  center1.AddRelation("R");
  center1.AddRelation("R");
  center1.AddRelation("R");
  center1.AddOverlap(0, 1).AddOverlap(1, 2);
  QueryBuilder center0;
  center0.AddRelation("R");
  center0.AddRelation("R");
  center0.AddRelation("R");
  center0.AddOverlap(0, 1).AddOverlap(0, 2);
  const Query path1 = center1.Build().value();
  const Query path0 = center0.Build().value();
  ASSERT_EQ(path1.CanonicalForm(), path0.CanonicalForm());
  EXPECT_NE(path1.CanonicalRanks(), path0.CanonicalRanks());
}

}  // namespace
}  // namespace mwsj
