// Batch-kernel unit tests: every compiled ISA must reproduce the scalar
// reference byte-for-byte (indices, order, counts, sorted permutations),
// including degenerate rectangles, touching boundaries, exact-distance
// ties, and every tail length around the vector width.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/random.h"
#include "simd/simd.h"

namespace mwsj::simd {
namespace {

std::vector<Isa> AvailableIsas() {
  std::vector<Isa> isas = {Isa::kScalar};
  if (IsaAvailable(Isa::kSse)) isas.push_back(Isa::kSse);
  if (IsaAvailable(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  return isas;
}

struct FilterCase {
  SoaRects boxes;
  double q_min_x, q_min_y, q_max_x, q_max_y;
  double d = 1.0;
};

FilterCase RandomCase(uint64_t seed, size_t n, bool integer_coords) {
  Rng rng(seed);
  FilterCase fc;
  fc.boxes.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(-50, 50);
    double y = rng.Uniform(-50, 50);
    double l = rng.Uniform(0, 10);  // Zero-extent rectangles included.
    double b = rng.Uniform(0, 10);
    if (integer_coords) {
      x = std::floor(x);
      y = std::floor(y);
      l = std::floor(l);
      b = std::floor(b);
    }
    fc.boxes.PushBack(x, y, x + l, y + b);
  }
  fc.q_min_x = integer_coords ? std::floor(rng.Uniform(-50, 50))
                              : rng.Uniform(-50, 50);
  fc.q_min_y = integer_coords ? std::floor(rng.Uniform(-50, 50))
                              : rng.Uniform(-50, 50);
  fc.q_max_x = fc.q_min_x + (integer_coords ? 8 : rng.Uniform(0, 15));
  fc.q_max_y = fc.q_min_y + (integer_coords ? 8 : rng.Uniform(0, 15));
  fc.d = integer_coords ? 3.0 : rng.Uniform(0, 10);
  return fc;
}

std::vector<uint32_t> RunOverlap(const KernelTable& k, const FilterCase& fc) {
  std::vector<uint32_t> out(fc.boxes.size() + 1, 0xdeadbeef);
  const size_t hits = k.overlap_filter(
      fc.boxes.min_x.data(), fc.boxes.min_y.data(), fc.boxes.max_x.data(),
      fc.boxes.max_y.data(), fc.boxes.size(), fc.q_min_x, fc.q_min_y,
      fc.q_max_x, fc.q_max_y, out.data());
  out.resize(hits);
  return out;
}

std::vector<uint32_t> RunWithin(const KernelTable& k, const FilterCase& fc) {
  std::vector<uint32_t> out(fc.boxes.size() + 1, 0xdeadbeef);
  const size_t hits = k.within_filter(
      fc.boxes.min_x.data(), fc.boxes.min_y.data(), fc.boxes.max_x.data(),
      fc.boxes.max_y.data(), fc.boxes.size(), fc.q_min_x, fc.q_min_y,
      fc.q_max_x, fc.q_max_y, fc.d * fc.d, out.data());
  out.resize(hits);
  return out;
}

TEST(SimdFilterTest, MatchesScalarOnEveryIsaAndTailLength) {
  const auto isas = AvailableIsas();
  // Every length from empty through 17 crosses the 2- and 4-lane tail
  // boundaries several times; a few larger sizes exercise long runs.
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u,
                   13u, 14u, 15u, 16u, 17u, 100u, 257u}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      for (const bool integer_coords : {false, true}) {
        const FilterCase fc = RandomCase(seed * 977 + n, n, integer_coords);
        const auto overlap_ref = RunOverlap(KernelsFor(Isa::kScalar), fc);
        const auto within_ref = RunWithin(KernelsFor(Isa::kScalar), fc);
        // The scalar forward scan yields ascending matches by construction.
        EXPECT_TRUE(std::is_sorted(overlap_ref.begin(), overlap_ref.end()));
        for (const Isa isa : isas) {
          EXPECT_EQ(RunOverlap(KernelsFor(isa), fc), overlap_ref)
              << "isa=" << IsaName(isa) << " n=" << n << " seed=" << seed;
          EXPECT_EQ(RunWithin(KernelsFor(isa), fc), within_ref)
              << "isa=" << IsaName(isa) << " n=" << n << " seed=" << seed;
        }
      }
    }
  }
}

TEST(SimdFilterTest, TouchingBoundariesAndExactDistanceTies) {
  // Boxes placed exactly on the query edge (closed-set overlap must
  // include them) and exactly at distance d (squared compare must include
  // them; one ulp beyond must not).
  // Query spans [-1, 0] x [0, 1]; boxes anchor their facing edge at 0 or
  // exactly d, so the axis gap is d bit-for-bit (an offset like 1 + d
  // would round the gap away from d).
  const double d = 1.0 / 3.0;
  FilterCase fc;
  fc.q_min_x = -1;
  fc.q_min_y = 0;
  fc.q_max_x = 0;
  fc.q_max_y = 1;
  fc.d = d;
  fc.boxes.PushBack(0, 0, 1, 1);                           // Touching edge.
  fc.boxes.PushBack(d, 0, d + 1, 1);                       // Gap exactly d.
  fc.boxes.PushBack(std::nextafter(d, 8.0), 0, 3, 1);      // One ulp beyond.
  fc.boxes.PushBack(-0.5, 0.5, -0.5, 0.5);  // Degenerate point inside.
  fc.boxes.PushBack(-9, -9, -8, -8);        // Far miss.
  const auto overlap = RunOverlap(KernelsFor(Isa::kScalar), fc);
  EXPECT_EQ(overlap, (std::vector<uint32_t>{0, 3}));
  const auto within = RunWithin(KernelsFor(Isa::kScalar), fc);
  // The exact tie is in (squared compare), the next double out is not.
  EXPECT_EQ(within, (std::vector<uint32_t>{0, 1, 3}));
  for (const Isa isa : AvailableIsas()) {
    EXPECT_EQ(RunOverlap(KernelsFor(isa), fc), overlap) << IsaName(isa);
    EXPECT_EQ(RunWithin(KernelsFor(isa), fc), within) << IsaName(isa);
  }
  // d = 0 degenerates to closed-set overlap.
  fc.d = 0;
  for (const Isa isa : AvailableIsas()) {
    EXPECT_EQ(RunWithin(KernelsFor(isa), fc), overlap) << IsaName(isa);
  }
}

TEST(SimdFilterTest, NaNCoordinatesMirrorTheScalarGeometry) {
  // Ingest rejects NaN, but the kernels' contract with the geometry layer
  // is still pinned, on every ISA. Overlap: a NaN coordinate fails every
  // <= (like Overlaps), so NaN boxes never overlap. Within: AxisGap's
  // comparisons are all false for NaN, so a NaN gap collapses to 0 — the
  // kernels reproduce MinDistanceSquared's behavior rather than invent a
  // stricter one.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  FilterCase fc;
  fc.q_min_x = -10;
  fc.q_min_y = -10;
  fc.q_max_x = 10;
  fc.q_max_y = 10;
  fc.d = 5;
  fc.boxes.PushBack(0, 0, 1, 1);
  fc.boxes.PushBack(nan, 0, 1, 1);
  fc.boxes.PushBack(0, nan, 1, nan);
  fc.boxes.PushBack(2, 2, 3, 3);
  for (const Isa isa : AvailableIsas()) {
    EXPECT_EQ(RunOverlap(KernelsFor(isa), fc),
              (std::vector<uint32_t>{0, 3}))
        << IsaName(isa);
    EXPECT_EQ(RunWithin(KernelsFor(isa), fc),
              (std::vector<uint32_t>{0, 1, 2, 3}))
        << IsaName(isa);
  }
}

// ---------------------------------------------------------------------------
// Sort kernel.

void CheckSortAgainstStableSort(const std::vector<uint64_t>& keys) {
  const size_t n = keys.size();
  std::vector<uint32_t> expected(n);
  for (size_t i = 0; i < n; ++i) expected[i] = static_cast<uint32_t>(i);
  std::stable_sort(expected.begin(), expected.end(),
                   [&keys](uint32_t a, uint32_t b) {
                     return keys[a] < keys[b];
                   });
  for (const Isa isa : AvailableIsas()) {
    std::vector<uint64_t> k = keys;
    std::vector<uint32_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
    KernelsFor(isa).sort_key_idx(k.data(), idx.data(), n);
    EXPECT_EQ(idx, expected) << IsaName(isa) << " n=" << n;
    std::vector<uint64_t> sorted_keys = keys;
    std::sort(sorted_keys.begin(), sorted_keys.end());
    EXPECT_EQ(k, sorted_keys) << IsaName(isa) << " n=" << n;
  }
}

TEST(SimdSortTest, EqualsStableSortByKey) {
  // Sizes straddle the insertion-sort threshold (32) and the lane widths;
  // key ranges force heavy duplication so the idx tie-break does real work.
  for (size_t n : {0u, 1u, 2u, 3u, 31u, 32u, 33u, 64u, 100u, 1000u, 4096u}) {
    for (const uint64_t range : {uint64_t{1}, uint64_t{4}, uint64_t{1000},
                                 std::numeric_limits<uint64_t>::max()}) {
      Rng rng(n * 1315423911u + range);
      std::vector<uint64_t> keys(n);
      for (auto& k : keys) {
        k = range == std::numeric_limits<uint64_t>::max()
                ? rng.Next()
                : rng.Next() % range;
      }
      CheckSortAgainstStableSort(keys);
    }
  }
}

TEST(SimdSortTest, AdversarialPatterns) {
  std::vector<uint64_t> sorted(1000), reversed(1000), organ(1000);
  for (size_t i = 0; i < 1000; ++i) {
    sorted[i] = i;
    reversed[i] = 1000 - i;
    organ[i] = std::min(i, 1000 - i);  // Organ-pipe: median-of-3 stress.
  }
  CheckSortAgainstStableSort(sorted);
  CheckSortAgainstStableSort(reversed);
  CheckSortAgainstStableSort(organ);
  CheckSortAgainstStableSort(std::vector<uint64_t>(1000, 42));  // All equal.
}

// ---------------------------------------------------------------------------
// Key encodings and dispatch plumbing.

TEST(OrderedKeyTest, PreservesDoubleOrdering) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> ascending = {
      -inf, -1e308, -2.5, -1.0, -1e-300, -std::numeric_limits<double>::denorm_min(),
      0.0, std::numeric_limits<double>::denorm_min(), 1e-300, 0.5, 1.0,
      1.0000000000000002, 3.14, 1e308, inf};
  for (size_t i = 0; i + 1 < ascending.size(); ++i) {
    EXPECT_LT(OrderedKeyFromDouble(ascending[i]),
              OrderedKeyFromDouble(ascending[i + 1]))
        << ascending[i] << " vs " << ascending[i + 1];
  }
  // Signed zeros compare equal as doubles, so they must share one key.
  EXPECT_EQ(OrderedKeyFromDouble(-0.0), OrderedKeyFromDouble(0.0));
}

TEST(OrderedKeyTest, PreservesIntegerOrdering) {
  const std::vector<int64_t> ascending = {
      std::numeric_limits<int64_t>::min(), -1000000, -1, 0, 1, 1000000,
      std::numeric_limits<int64_t>::max()};
  for (size_t i = 0; i + 1 < ascending.size(); ++i) {
    EXPECT_LT(OrderedKeyFromInt(ascending[i]),
              OrderedKeyFromInt(ascending[i + 1]));
  }
  EXPECT_LT(OrderedKeyFromInt(int32_t{-5}), OrderedKeyFromInt(int32_t{3}));
  EXPECT_LT(OrderedKeyFromInt(uint32_t{3}), OrderedKeyFromInt(uint32_t{5}));
}

TEST(SimdDispatchTest, ParseAndNames) {
  EXPECT_EQ(ParseIsa("scalar"), Isa::kScalar);
  EXPECT_EQ(ParseIsa("sse"), Isa::kSse);
  EXPECT_EQ(ParseIsa("avx2"), Isa::kAvx2);
  EXPECT_EQ(ParseIsa("AVX2"), std::nullopt);
  EXPECT_EQ(ParseIsa(""), std::nullopt);
  EXPECT_EQ(ParseIsa("avx512"), std::nullopt);
  for (const Isa isa : AvailableIsas()) {
    EXPECT_EQ(ParseIsa(IsaName(isa)), isa);
    EXPECT_EQ(KernelsFor(isa).isa, isa);
  }
}

TEST(SimdDispatchTest, SetIsaForTestingSwitchesTheActiveTable) {
  const Isa original = ActiveIsa();
  for (const Isa isa : AvailableIsas()) {
    SetIsaForTesting(isa);
    EXPECT_EQ(ActiveIsa(), isa);
    EXPECT_EQ(ActiveKernels().isa, isa);
  }
  SetIsaForTesting(original);
  EXPECT_EQ(ActiveIsa(), original);
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
  EXPECT_NE(ActiveKernels().overlap_filter, nullptr);
  EXPECT_NE(ActiveKernels().within_filter, nullptr);
  EXPECT_NE(ActiveKernels().sort_key_idx, nullptr);
}

}  // namespace
}  // namespace mwsj::simd
