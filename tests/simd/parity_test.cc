// Scalar-vs-SIMD parity: the 100-world randomized property suite runs
// under every available ISA and the *unsorted* emit streams must be
// byte-identical — not just the same result sets. This pins the whole
// dispatch seam: R-tree traversal order, linear-scan candidate order, the
// plane-sweep event sort, and the correctness of each filter.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "localjoin/brute_force.h"
#include "localjoin/multiway.h"
#include "localjoin/plane_sweep.h"
#include "queries/knn_mr.h"
#include "testing/world.h"

namespace mwsj {
namespace {

std::vector<simd::Isa> AvailableIsas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::IsaAvailable(simd::Isa::kSse)) isas.push_back(simd::Isa::kSse);
  if (simd::IsaAvailable(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  return isas;
}

// Restores the pre-test dispatch table even when an assertion fails.
class IsaGuard {
 public:
  IsaGuard() : original_(simd::ActiveIsa()) {}
  ~IsaGuard() { simd::SetIsaForTesting(original_); }

 private:
  simd::Isa original_;
};

// The raw emit stream of the multiway local join — deliberately NOT
// sorted, so any ISA-dependent traversal or candidate order shows up.
std::vector<IdTuple> MultiwayEmitStream(
    const Query& query, const std::vector<std::vector<Rect>>& data) {
  std::vector<std::vector<LocalRect>> local(data.size());
  for (size_t r = 0; r < data.size(); ++r) {
    for (size_t i = 0; i < data[r].size(); ++i) {
      local[r].push_back(LocalRect{data[r][i], static_cast<int64_t>(i)});
    }
  }
  std::vector<std::span<const LocalRect>> spans;
  for (const auto& rel : local) spans.emplace_back(rel.data(), rel.size());
  MultiwayLocalJoin join(query, std::move(spans));
  std::vector<IdTuple> stream;
  join.Execute([&stream](const std::vector<const LocalRect*>& members) {
    IdTuple ids;
    ids.reserve(members.size());
    for (const LocalRect* m : members) ids.push_back(m->id);
    stream.push_back(std::move(ids));
  });
  return stream;
}

TEST(SimdParityTest, HundredWorldsEmitIdenticalStreamsUnderEveryIsa) {
  using testing::PredicateMix;
  using testing::QueryShape;
  IsaGuard guard;
  const QueryShape shapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                               QueryShape::kStar4, QueryShape::kCycle3};
  const PredicateMix mixes[] = {PredicateMix::kOverlapOnly,
                                PredicateMix::kRangeOnly,
                                PredicateMix::kHybrid};
  const auto isas = AvailableIsas();
  for (int trial = 0; trial < 100; ++trial) {
    testing::WorldConfig config;
    config.shape = shapes[trial % 4];
    config.mix = mixes[trial % 3];
    // Integer worlds maximize boundary ties — the cases where a sloppier
    // vector predicate would diverge first.
    config.integer_coords = (trial % 2 == 1);
    config.seed = static_cast<uint64_t>(trial) * 131 + 7;
    const Query query = testing::MakeWorldQuery(config);
    const auto data = testing::MakeWorldData(config, query.num_relations());

    simd::SetIsaForTesting(simd::Isa::kScalar);
    const std::vector<IdTuple> reference = MultiwayEmitStream(query, data);

    // Correctness anchor: the scalar stream's sorted content matches the
    // brute-force join.
    std::vector<IdTuple> sorted = reference;
    SortTuples(&sorted);
    ASSERT_EQ(sorted, BruteForceJoin(query, data)) << "trial=" << trial;

    for (const simd::Isa isa : isas) {
      simd::SetIsaForTesting(isa);
      EXPECT_EQ(MultiwayEmitStream(query, data), reference)
          << "trial=" << trial << " isa=" << simd::IsaName(isa);
    }
  }
}

// The distributed kNN join dispatches through the same seam (its round-2
// reducers drive the R-tree distance kernels), so its full pipeline —
// tuples, per-reducer record streams, intermediate volumes, and user
// counters — must be byte-identical under every ISA.
TEST(SimdParityTest, KnnMrPipelineIsIdenticalUnderEveryIsa) {
  IsaGuard guard;
  const auto isas = AvailableIsas();
  const Query query = MakeChainQuery(2, Predicate::Overlap()).value();
  for (int trial = 0; trial < 20; ++trial) {
    testing::KnnWorldConfig config;
    config.num_points = 50 + (trial % 5) * 20;
    config.num_rects = 100 + (trial % 7) * 30;
    config.with_duplicates = (trial % 3 == 0);
    config.seed = static_cast<uint64_t>(trial) * 131 + 7;
    const auto data = testing::MakeKnnWorldData(config);
    const int k = 1 + trial % 9;

    RunnerOptions options;
    options.grid_rows = 1 + trial % 4;
    options.grid_cols = 1 + (trial / 4) % 4;
    options.space = Rect(0, 0, config.space_size, config.space_size);

    simd::SetIsaForTesting(simd::Isa::kScalar);
    const auto reference = RunKnnJoinMr(query, data, k, options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    ASSERT_EQ(reference.value().tuples,
              testing::KnnOracleTuples(data[0], data[1], k))
        << "trial=" << trial;

    for (const simd::Isa isa : isas) {
      simd::SetIsaForTesting(isa);
      const auto run = RunKnnJoinMr(query, data, k, options);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_EQ(run.value().tuples, reference.value().tuples)
          << "trial=" << trial << " isa=" << simd::IsaName(isa);
      ASSERT_EQ(run.value().stats.jobs.size(),
                reference.value().stats.jobs.size());
      for (size_t j = 0; j < run.value().stats.jobs.size(); ++j) {
        const JobStats& a = reference.value().stats.jobs[j];
        const JobStats& b = run.value().stats.jobs[j];
        EXPECT_EQ(a.per_reducer_records, b.per_reducer_records)
            << "trial=" << trial << " isa=" << simd::IsaName(isa) << " job "
            << a.job_name;
        EXPECT_EQ(a.intermediate_records, b.intermediate_records)
            << "trial=" << trial << " isa=" << simd::IsaName(isa) << " job "
            << a.job_name;
        EXPECT_EQ(a.user_counters, b.user_counters)
            << "trial=" << trial << " isa=" << simd::IsaName(isa) << " job "
            << a.job_name;
      }
    }
  }
}

TEST(SimdParityTest, PlaneSweepEmitsIdenticalPairStreams) {
  IsaGuard guard;
  const auto isas = AvailableIsas();
  for (int trial = 0; trial < 20; ++trial) {
    testing::WorldConfig config;
    config.shape = testing::QueryShape::kChain3;
    config.mix = (trial % 2 == 0) ? testing::PredicateMix::kOverlapOnly
                                  : testing::PredicateMix::kRangeOnly;
    // Integer coordinates force many equal sweep positions, stressing the
    // sort key's tie-break encoding.
    config.integer_coords = true;
    config.seed = static_cast<uint64_t>(trial) * 977 + 3;
    const Query query = testing::MakeWorldQuery(config);
    const auto data = testing::MakeWorldData(config, 2);
    const Predicate& predicate = query.conditions()[0].predicate;

    const auto run = [&]() {
      std::vector<std::pair<int32_t, int32_t>> pairs;
      PlaneSweepJoin(data[0], data[1], predicate,
                     [&pairs](int32_t i, int32_t j) {
                       pairs.emplace_back(i, j);
                     });
      return pairs;
    };

    simd::SetIsaForTesting(simd::Isa::kScalar);
    const auto reference = run();
    for (const simd::Isa isa : isas) {
      simd::SetIsaForTesting(isa);
      EXPECT_EQ(run(), reference)
          << "trial=" << trial << " isa=" << simd::IsaName(isa);
    }
  }
}

}  // namespace
}  // namespace mwsj
