// Grid histogram and cardinality-estimation tests.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/synthetic.h"
#include "localjoin/brute_force.h"
#include "stats/grid_histogram.h"

namespace mwsj {
namespace {

std::vector<Rect> UniformData(int64_t n, double dim, uint64_t seed) {
  SyntheticParams params;
  params.num_rectangles = n;
  params.x_max = params.y_max = 1000;
  params.l_max = params.b_max = dim;
  params.seed = seed;
  return GenerateSynthetic(params).value();
}

TEST(GridHistogramTest, CountsStartPointsPerCell) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 10, 10), 2, 2).value();
  const std::vector<Rect> data = {
      Rect::FromXYLB(1, 9, 1, 1),   // Top-left cell.
      Rect::FromXYLB(2, 8, 1, 1),   // Top-left cell.
      Rect::FromXYLB(7, 2, 1, 1),   // Bottom-right cell.
  };
  const GridHistogram h(grid, data);
  EXPECT_DOUBLE_EQ(h.CellCount(0), 2);
  EXPECT_DOUBLE_EQ(h.CellCount(3), 1);
  EXPECT_DOUBLE_EQ(h.CellCount(1), 0);
  EXPECT_DOUBLE_EQ(h.total(), 3);
  EXPECT_DOUBLE_EQ(h.CellAvgLength(0), 1);
}

TEST(GridHistogramTest, ScaleToExtrapolatesSampleCounts) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 1000, 1000), 4, 4).value();
  const std::vector<Rect> sample = UniformData(500, 10, 3);
  const GridHistogram h(grid, sample, /*scale_to=*/50'000);
  EXPECT_NEAR(h.total(), 50'000, 1e-6);
}

TEST(GridHistogramTest, SkewRatioDetectsClustering) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 1000, 1000), 4, 4).value();
  const GridHistogram uniform(grid, UniformData(5000, 10, 1));
  EXPECT_LT(uniform.SkewRatio(), 1.5);

  std::vector<Rect> clustered;
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    clustered.push_back(Rect::FromXYLB(rng.Uniform(0, 100),
                                       rng.Uniform(900, 1000), 5, 5));
  }
  const GridHistogram skewed(grid, clustered);
  EXPECT_GT(skewed.SkewRatio(), 10);
}

TEST(GridHistogramTest, OverlapPairEstimateTracksTruth) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 1000, 1000), 4, 4).value();
  const std::vector<Rect> a = UniformData(2000, 40, 5);
  const std::vector<Rect> b = UniformData(2000, 40, 6);
  int64_t truth = 0;
  for (const Rect& ra : a) {
    for (const Rect& rb : b) {
      if (Overlaps(ra, rb)) ++truth;
    }
  }
  const GridHistogram ha(grid, a);
  const GridHistogram hb(grid, b);
  const double estimate = ha.EstimateOverlapPairs(hb);
  EXPECT_GT(estimate, 0.4 * static_cast<double>(truth));
  EXPECT_LT(estimate, 2.5 * static_cast<double>(truth));
}

TEST(GridHistogramTest, RangeEstimateGrowsWithDistance) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 1000, 1000), 4, 4).value();
  const GridHistogram ha(grid, UniformData(1000, 20, 7));
  const GridHistogram hb(grid, UniformData(1000, 20, 8));
  EXPECT_LT(ha.EstimateRangePairs(hb, 5), ha.EstimateRangePairs(hb, 50));
  EXPECT_GE(ha.EstimateRangePairs(hb, 0), ha.EstimateOverlapPairs(hb) - 1e-9);
}

TEST(GridHistogramTest, JoinCardinalityEstimateTracksTruth) {
  const Query q = MakeChainQuery(3, Predicate::Overlap()).value();
  const std::vector<std::vector<Rect>> data = {UniformData(800, 50, 11),
                                               UniformData(800, 50, 12),
                                               UniformData(800, 50, 13)};
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 1000, 1000), 4, 4).value();
  std::vector<GridHistogram> histograms;
  for (const auto& rel : data) histograms.emplace_back(grid, rel);
  const double estimate = EstimateJoinCardinality(q, histograms);
  const double truth = static_cast<double>(BruteForceJoin(q, data).size());
  EXPECT_GT(estimate, 0.2 * truth);
  EXPECT_LT(estimate, 5 * truth);
}

TEST(GridHistogramTest, AsciiArtShape) {
  const GridPartition grid =
      GridPartition::Create(Rect(0, 0, 10, 10), 2, 3).value();
  const std::vector<Rect> data = {Rect::FromXYLB(1, 9, 1, 1)};
  const std::string art = GridHistogram(grid, data).ToAsciiArt();
  EXPECT_EQ(art, "9..\n...\n");
}

}  // namespace
}  // namespace mwsj
