#include "testing/chaos.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "common/str_format.h"
#include "core/scheduler.h"
#include "localjoin/brute_force.h"
#include "mapreduce/fault.h"
#include "testing/differential.h"

namespace mwsj::testing {

ChaosOutcome RunChaosWorld(const WorldConfig& config, Algorithm algorithm,
                           const ChaosOptions& options) {
  const Query query = MakeWorldQuery(config);
  const std::vector<std::vector<Rect>> data =
      MakeWorldData(config, query.num_relations());

  RunnerOptions runner;
  runner.algorithm = algorithm;
  // Grid geometry varies with the world seed, like the equivalence suite:
  // single-reducer, skinny, and square grids must all recover identically.
  const int grid_cases[][2] = {{1, 1}, {1, 4}, {3, 3}, {5, 2}, {4, 4}};
  const auto& grid = grid_cases[config.seed % 5];
  runner.grid_rows = grid[0];
  runner.grid_cols = grid[1];
  runner.space = Rect(0, 0, config.space_size, config.space_size);

  DifferentialWorkload workload;
  workload.name = AlgorithmName(algorithm);
  workload.oracle = [&query, &data] { return BruteForceJoin(query, data); };
  workload.run = [&query, &data,
                  &runner](const ExecutionContext& ctx) {
    RunnerOptions run_options = runner;
    run_options.context = ctx;
    return RunSpatialJoin(query, data, run_options);
  };

  DifferentialOptions diff;
  diff.fault_seed = options.fault_seed;
  diff.crash_prob = options.crash_prob;
  diff.flaky_prob = options.flaky_prob;
  diff.slow_prob = options.slow_prob;
  diff.pool = options.pool;
  diff.shuffle_memory_budget = options.shuffle_memory_budget;
  diff.fault_plan = options.fault_plan;
  return RunDifferentialWorld(workload, diff);
}

SchedulerChaosOutcome RunSchedulerChaosWorld(
    const SchedulerChaosOptions& options) {
  SchedulerChaosOutcome outcome;
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
      Algorithm::kControlledReplicate,
      Algorithm::kControlledReplicateInLimit};
  constexpr QueryShape kShapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                                    QueryShape::kStar4, QueryShape::kCycle3};
  constexpr PredicateMix kMixes[] = {PredicateMix::kOverlapOnly,
                                     PredicateMix::kRangeOnly,
                                     PredicateMix::kHybrid};
  const int num_jobs = options.num_jobs;

  // Per-job worlds and serial fault-free baselines, computed outside the
  // scheduler so the concurrent fleet has an independent ground truth.
  std::vector<Query> queries;
  std::vector<std::vector<std::vector<Rect>>> datasets;
  std::vector<StatusOr<JoinRunResult>> baselines;
  std::vector<FaultPlan> plans;
  queries.reserve(static_cast<size_t>(num_jobs));
  datasets.reserve(static_cast<size_t>(num_jobs));
  plans.reserve(static_cast<size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i) {
    WorldConfig config;
    config.shape = kShapes[i % 4];
    config.mix = kMixes[i % 3];
    config.integer_coords = (i % 2 == 1);
    config.seed = options.base_seed * 1000003 +
                  static_cast<uint64_t>(i) * 7919 + 17;
    queries.push_back(MakeWorldQuery(config));
    datasets.push_back(MakeWorldData(config, queries.back().num_relations()));

    RunnerOptions runner;
    runner.algorithm = kAlgorithms[i % 4];
    baselines.push_back(RunSpatialJoin(queries[static_cast<size_t>(i)],
                                       datasets[static_cast<size_t>(i)],
                                       runner));
    if (!baselines.back().ok()) {
      outcome.mismatch =
          StrFormat("baseline %d failed: %s", i,
                    baselines.back().status().ToString().c_str());
      return outcome;
    }
    plans.push_back(FaultPlan::Seeded(
        options.base_seed * 6364136223846793005ull +
            static_cast<uint64_t>(i) * 104729 + 3,
        options.crash_prob, options.flaky_prob, options.slow_prob));
  }

  RetryPolicy retry;
  retry.sleep = [](double) {};  // Virtual clock, as in RunChaosWorld.

  std::vector<JobHandle> handles;
  std::vector<bool> cancel_landed(static_cast<size_t>(num_jobs), false);
  {
    SchedulerOptions sched_options;
    sched_options.pool = options.pool;
    sched_options.max_in_flight = options.max_in_flight;
    sched_options.max_queued = num_jobs;
    JobScheduler scheduler(sched_options);
    for (int i = 0; i < num_jobs; ++i) {
      JobSpec spec;
      spec.query = queries[static_cast<size_t>(i)];
      spec.borrowed_relations = &datasets[static_cast<size_t>(i)];
      spec.options.algorithm = kAlgorithms[i % 4];
      spec.options.context.faults = &plans[static_cast<size_t>(i)];
      spec.options.context.retry = &retry;
      StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
      if (!handle.ok()) {
        outcome.mismatch = StrFormat(
            "submit %d rejected: %s", i, handle.status().ToString().c_str());
        return outcome;
      }
      handles.push_back(std::move(handle.value()));
    }
    // Cancellations race the drivers: whichever jobs are still queued die,
    // anything already running must finish with its exact result.
    if (options.cancel_every > 0) {
      for (int i = options.cancel_every - 1; i < num_jobs;
           i += options.cancel_every) {
        cancel_landed[static_cast<size_t>(i)] =
            handles[static_cast<size_t>(i)].Cancel();
      }
    }
    // Scheduler destruction drains every admitted job.
  }

  for (int i = 0; i < num_jobs; ++i) {
    const StatusOr<JoinRunResult>& result =
        handles[static_cast<size_t>(i)].Wait();
    if (cancel_landed[static_cast<size_t>(i)]) {
      ++outcome.cancelled;
      if (result.ok() ||
          result.status().code() != StatusCode::kFailedPrecondition) {
        outcome.mismatch = StrFormat(
            "cancelled job %d did not fail with FailedPrecondition", i);
        return outcome;
      }
      continue;
    }
    ++outcome.survived;
    if (!result.ok()) {
      outcome.mismatch = StrFormat("job %d failed: %s", i,
                                   result.status().ToString().c_str());
      return outcome;
    }
    const JoinRunResult& baseline = baselines[static_cast<size_t>(i)].value();
    if (result.value().tuples != baseline.tuples ||
        result.value().num_tuples != baseline.num_tuples) {
      outcome.mismatch = StrFormat(
          "job %d diverged from its serial baseline (%zu vs %zu tuples)", i,
          result.value().tuples.size(), baseline.tuples.size());
      return outcome;
    }
    outcome.mismatch = CompareJobStats(baseline.stats, result.value().stats);
    if (!outcome.mismatch.empty()) {
      outcome.mismatch =
          StrFormat("job %d: %s", i, outcome.mismatch.c_str());
      return outcome;
    }
    for (const JobStats& job : result.value().stats.jobs) {
      if (job.job_id != handles[static_cast<size_t>(i)].id()) {
        outcome.mismatch = StrFormat(
            "job %d stats attributed to submission %lld, expected %lld", i,
            static_cast<long long>(job.job_id),
            static_cast<long long>(handles[static_cast<size_t>(i)].id()));
        return outcome;
      }
      for (const PhaseFaultStats* f : {&job.map_faults, &job.reduce_faults}) {
        outcome.attempts += f->attempts;
        outcome.retries += f->retries;
        outcome.speculative += f->speculative;
        outcome.wasted_records += f->wasted_records;
      }
    }
  }
  return outcome;
}

}  // namespace mwsj::testing
