#include "testing/chaos.h"

#include <cstddef>
#include <vector>

#include "common/str_format.h"
#include "localjoin/brute_force.h"
#include "mapreduce/dfs.h"
#include "mapreduce/fault.h"

namespace mwsj::testing {

namespace {

// First divergence between two runs' job statistics, or "" when the
// faulted run is byte-identical to the baseline in every exactly-once
// quantity (fault accounting is deliberately excluded — it is *supposed*
// to differ).
std::string CompareJobStats(const RunStats& baseline, const RunStats& faulted) {
  if (baseline.jobs.size() != faulted.jobs.size()) {
    return StrFormat("job count %zu vs %zu", baseline.jobs.size(),
                     faulted.jobs.size());
  }
  for (size_t j = 0; j < baseline.jobs.size(); ++j) {
    const JobStats& b = baseline.jobs[j];
    const JobStats& f = faulted.jobs[j];
    if (b.job_name != f.job_name) {
      return StrFormat("job %zu name '%s' vs '%s'", j, b.job_name.c_str(),
                       f.job_name.c_str());
    }
    auto diff = [&](const char* what, int64_t bv, int64_t fv) {
      return StrFormat("job '%s' %s %lld vs %lld under faults",
                       b.job_name.c_str(), what, static_cast<long long>(bv),
                       static_cast<long long>(fv));
    };
    if (b.map_input_records != f.map_input_records) {
      return diff("map_input_records", b.map_input_records,
                  f.map_input_records);
    }
    if (b.intermediate_records != f.intermediate_records) {
      return diff("intermediate_records", b.intermediate_records,
                  f.intermediate_records);
    }
    if (b.intermediate_bytes != f.intermediate_bytes) {
      return diff("intermediate_bytes", b.intermediate_bytes,
                  f.intermediate_bytes);
    }
    if (b.reduce_output_records != f.reduce_output_records) {
      return diff("reduce_output_records", b.reduce_output_records,
                  f.reduce_output_records);
    }
    if (b.reduce_output_bytes != f.reduce_output_bytes) {
      return diff("reduce_output_bytes", b.reduce_output_bytes,
                  f.reduce_output_bytes);
    }
    if (b.per_reducer_records != f.per_reducer_records) {
      return StrFormat("job '%s' per-reducer records diverged under faults",
                       b.job_name.c_str());
    }
    if (b.user_counters != f.user_counters) {
      for (const auto& [name, value] : b.user_counters) {
        const auto it = f.user_counters.find(name);
        if (it == f.user_counters.end()) {
          return StrFormat("job '%s' counter '%s' missing under faults",
                           b.job_name.c_str(), name.c_str());
        }
        if (it->second != value) {
          return diff(name.c_str(), value, it->second);
        }
      }
      return StrFormat("job '%s' has extra counters under faults",
                       b.job_name.c_str());
    }
  }
  return "";
}

}  // namespace

ChaosOutcome RunChaosWorld(const WorldConfig& config, Algorithm algorithm,
                           const ChaosOptions& options) {
  ChaosOutcome outcome;
  const Query query = MakeWorldQuery(config);
  const std::vector<std::vector<Rect>> data =
      MakeWorldData(config, query.num_relations());
  const std::vector<IdTuple> expected = BruteForceJoin(query, data);

  RunnerOptions runner;
  runner.algorithm = algorithm;
  // Grid geometry varies with the world seed, like the equivalence suite:
  // single-reducer, skinny, and square grids must all recover identically.
  const int grid_cases[][2] = {{1, 1}, {1, 4}, {3, 3}, {5, 2}, {4, 4}};
  const auto& grid = grid_cases[config.seed % 5];
  runner.grid_rows = grid[0];
  runner.grid_cols = grid[1];
  runner.space = Rect(0, 0, config.space_size, config.space_size);
  runner.context.pool = options.pool;

  Dfs baseline_dfs;
  RunnerOptions baseline_options = runner;
  baseline_options.context.dfs = &baseline_dfs;
  const StatusOr<JoinRunResult> baseline =
      RunSpatialJoin(query, data, baseline_options);
  if (!baseline.ok()) {
    outcome.mismatch =
        StrFormat("baseline run failed: %s",
                  baseline.status().ToString().c_str());
    return outcome;
  }

  const FaultPlan plan = FaultPlan::Seeded(
      options.fault_seed, options.crash_prob, options.flaky_prob,
      options.slow_prob);
  RetryPolicy retry;
  retry.sleep = [](double) {};  // Virtual clock: chaos sweeps never sleep.
  Dfs faulted_dfs;
  RunnerOptions faulted_options = runner;
  faulted_options.context.faults = &plan;
  faulted_options.context.retry = &retry;
  faulted_options.context.dfs = &faulted_dfs;
  const StatusOr<JoinRunResult> faulted =
      RunSpatialJoin(query, data, faulted_options);
  if (!faulted.ok()) {
    outcome.mismatch = StrFormat("faulted run failed: %s",
                                 faulted.status().ToString().c_str());
    return outcome;
  }

  for (const JobStats& job : faulted.value().stats.jobs) {
    for (const PhaseFaultStats* f : {&job.map_faults, &job.reduce_faults}) {
      outcome.attempts += f->attempts;
      outcome.retries += f->retries;
      outcome.speculative += f->speculative;
      outcome.wasted_records += f->wasted_records;
      outcome.wasted_seconds += f->wasted_seconds;
      outcome.backoff_seconds += f->backoff_seconds;
    }
  }
  outcome.num_tuples = faulted.value().num_tuples;

  // Exactly-once, checked in rising order of subtlety: the oracle, the
  // byte-identical tuple vector, the per-job statistics and counters, and
  // the DFS ledger (no phantom bytes from discarded attempts).
  if (faulted.value().tuples != expected) {
    outcome.mismatch = StrFormat(
        "faulted run diverged from brute force (%zu vs %zu tuples)",
        faulted.value().tuples.size(), expected.size());
    return outcome;
  }
  if (faulted.value().tuples != baseline.value().tuples) {
    outcome.mismatch = "faulted tuples != fault-free tuples";
    return outcome;
  }
  if (faulted.value().num_tuples != baseline.value().num_tuples) {
    outcome.mismatch = StrFormat(
        "num_tuples %lld vs %lld under faults",
        static_cast<long long>(baseline.value().num_tuples),
        static_cast<long long>(faulted.value().num_tuples));
    return outcome;
  }
  outcome.mismatch =
      CompareJobStats(baseline.value().stats, faulted.value().stats);
  if (!outcome.mismatch.empty()) return outcome;
  if (faulted_dfs.bytes_written() != baseline_dfs.bytes_written() ||
      faulted_dfs.records_written() != baseline_dfs.records_written()) {
    outcome.mismatch = StrFormat(
        "DFS write ledger diverged: %lld bytes / %lld records vs baseline "
        "%lld / %lld",
        static_cast<long long>(faulted_dfs.bytes_written()),
        static_cast<long long>(faulted_dfs.records_written()),
        static_cast<long long>(baseline_dfs.bytes_written()),
        static_cast<long long>(baseline_dfs.records_written()));
    return outcome;
  }
  if (faulted_dfs.live_bytes() != baseline_dfs.live_bytes() ||
      faulted_dfs.live_records() != baseline_dfs.live_records()) {
    outcome.mismatch = StrFormat(
        "DFS live datasets diverged: %lld bytes vs baseline %lld",
        static_cast<long long>(faulted_dfs.live_bytes()),
        static_cast<long long>(baseline_dfs.live_bytes()));
    return outcome;
  }
  // Committed writes must be exactly the live datasets: every part file is
  // committed once, never re-committed by a discarded attempt.
  if (faulted_dfs.bytes_written() != faulted_dfs.live_bytes()) {
    outcome.mismatch = StrFormat(
        "DFS bytes_written %lld != live bytes %lld (phantom attempt bytes)",
        static_cast<long long>(faulted_dfs.bytes_written()),
        static_cast<long long>(faulted_dfs.live_bytes()));
    return outcome;
  }
  return outcome;
}

}  // namespace mwsj::testing
