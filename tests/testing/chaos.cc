#include "testing/chaos.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "common/str_format.h"
#include "core/scheduler.h"
#include "localjoin/brute_force.h"
#include "mapreduce/dfs.h"
#include "mapreduce/fault.h"

namespace mwsj::testing {

namespace {

// First divergence between two runs' job statistics, or "" when the
// faulted run is byte-identical to the baseline in every exactly-once
// quantity (fault accounting is deliberately excluded — it is *supposed*
// to differ).
std::string CompareJobStats(const RunStats& baseline, const RunStats& faulted) {
  if (baseline.jobs.size() != faulted.jobs.size()) {
    return StrFormat("job count %zu vs %zu", baseline.jobs.size(),
                     faulted.jobs.size());
  }
  for (size_t j = 0; j < baseline.jobs.size(); ++j) {
    const JobStats& b = baseline.jobs[j];
    const JobStats& f = faulted.jobs[j];
    if (b.job_name != f.job_name) {
      return StrFormat("job %zu name '%s' vs '%s'", j, b.job_name.c_str(),
                       f.job_name.c_str());
    }
    auto diff = [&](const char* what, int64_t bv, int64_t fv) {
      return StrFormat("job '%s' %s %lld vs %lld under faults",
                       b.job_name.c_str(), what, static_cast<long long>(bv),
                       static_cast<long long>(fv));
    };
    if (b.map_input_records != f.map_input_records) {
      return diff("map_input_records", b.map_input_records,
                  f.map_input_records);
    }
    if (b.intermediate_records != f.intermediate_records) {
      return diff("intermediate_records", b.intermediate_records,
                  f.intermediate_records);
    }
    if (b.intermediate_bytes != f.intermediate_bytes) {
      return diff("intermediate_bytes", b.intermediate_bytes,
                  f.intermediate_bytes);
    }
    if (b.reduce_output_records != f.reduce_output_records) {
      return diff("reduce_output_records", b.reduce_output_records,
                  f.reduce_output_records);
    }
    if (b.reduce_output_bytes != f.reduce_output_bytes) {
      return diff("reduce_output_bytes", b.reduce_output_bytes,
                  f.reduce_output_bytes);
    }
    if (b.per_reducer_records != f.per_reducer_records) {
      return StrFormat("job '%s' per-reducer records diverged under faults",
                       b.job_name.c_str());
    }
    if (b.user_counters != f.user_counters) {
      for (const auto& [name, value] : b.user_counters) {
        const auto it = f.user_counters.find(name);
        if (it == f.user_counters.end()) {
          return StrFormat("job '%s' counter '%s' missing under faults",
                           b.job_name.c_str(), name.c_str());
        }
        if (it->second != value) {
          return diff(name.c_str(), value, it->second);
        }
      }
      return StrFormat("job '%s' has extra counters under faults",
                       b.job_name.c_str());
    }
  }
  return "";
}

}  // namespace

ChaosOutcome RunChaosWorld(const WorldConfig& config, Algorithm algorithm,
                           const ChaosOptions& options) {
  ChaosOutcome outcome;
  const Query query = MakeWorldQuery(config);
  const std::vector<std::vector<Rect>> data =
      MakeWorldData(config, query.num_relations());
  const std::vector<IdTuple> expected = BruteForceJoin(query, data);

  RunnerOptions runner;
  runner.algorithm = algorithm;
  // Grid geometry varies with the world seed, like the equivalence suite:
  // single-reducer, skinny, and square grids must all recover identically.
  const int grid_cases[][2] = {{1, 1}, {1, 4}, {3, 3}, {5, 2}, {4, 4}};
  const auto& grid = grid_cases[config.seed % 5];
  runner.grid_rows = grid[0];
  runner.grid_cols = grid[1];
  runner.space = Rect(0, 0, config.space_size, config.space_size);
  runner.context.pool = options.pool;

  Dfs baseline_dfs;
  RunnerOptions baseline_options = runner;
  baseline_options.context.dfs = &baseline_dfs;
  // The baseline is the in-memory ground truth: even when the environment
  // (or options.shuffle_memory_budget) puts the faulted run out-of-core,
  // the spilled output must be byte-identical to this.
  baseline_options.context.options.shuffle_memory_budget = -1;
  const StatusOr<JoinRunResult> baseline =
      RunSpatialJoin(query, data, baseline_options);
  if (!baseline.ok()) {
    outcome.mismatch =
        StrFormat("baseline run failed: %s",
                  baseline.status().ToString().c_str());
    return outcome;
  }

  const FaultPlan plan = FaultPlan::Seeded(
      options.fault_seed, options.crash_prob, options.flaky_prob,
      options.slow_prob);
  RetryPolicy retry;
  retry.sleep = [](double) {};  // Virtual clock: chaos sweeps never sleep.
  Dfs faulted_dfs;
  RunnerOptions faulted_options = runner;
  faulted_options.context.options.shuffle_memory_budget =
      options.shuffle_memory_budget;
  faulted_options.context.faults =
      options.fault_plan != nullptr ? options.fault_plan : &plan;
  faulted_options.context.retry = &retry;
  faulted_options.context.dfs = &faulted_dfs;
  const StatusOr<JoinRunResult> faulted =
      RunSpatialJoin(query, data, faulted_options);
  if (!faulted.ok()) {
    outcome.mismatch = StrFormat("faulted run failed: %s",
                                 faulted.status().ToString().c_str());
    return outcome;
  }

  for (const JobStats& job : faulted.value().stats.jobs) {
    for (const PhaseFaultStats* f : {&job.map_faults, &job.reduce_faults}) {
      outcome.attempts += f->attempts;
      outcome.retries += f->retries;
      outcome.speculative += f->speculative;
      outcome.wasted_records += f->wasted_records;
      outcome.wasted_seconds += f->wasted_seconds;
      outcome.backoff_seconds += f->backoff_seconds;
    }
    outcome.spilled_runs += job.spill.spilled_runs;
    outcome.spill_flush_retries += job.spill.flush_retries;
    outcome.spill_wasted_flush_bytes += job.spill.wasted_flush_bytes;
  }
  outcome.num_tuples = faulted.value().num_tuples;

  // Exactly-once, checked in rising order of subtlety: the oracle, the
  // byte-identical tuple vector, the per-job statistics and counters, and
  // the DFS ledger (no phantom bytes from discarded attempts).
  if (faulted.value().tuples != expected) {
    outcome.mismatch = StrFormat(
        "faulted run diverged from brute force (%zu vs %zu tuples)",
        faulted.value().tuples.size(), expected.size());
    return outcome;
  }
  if (faulted.value().tuples != baseline.value().tuples) {
    outcome.mismatch = "faulted tuples != fault-free tuples";
    return outcome;
  }
  if (faulted.value().num_tuples != baseline.value().num_tuples) {
    outcome.mismatch = StrFormat(
        "num_tuples %lld vs %lld under faults",
        static_cast<long long>(baseline.value().num_tuples),
        static_cast<long long>(faulted.value().num_tuples));
    return outcome;
  }
  outcome.mismatch =
      CompareJobStats(baseline.value().stats, faulted.value().stats);
  if (!outcome.mismatch.empty()) return outcome;
  if (faulted_dfs.bytes_written() != baseline_dfs.bytes_written() ||
      faulted_dfs.records_written() != baseline_dfs.records_written()) {
    outcome.mismatch = StrFormat(
        "DFS write ledger diverged: %lld bytes / %lld records vs baseline "
        "%lld / %lld",
        static_cast<long long>(faulted_dfs.bytes_written()),
        static_cast<long long>(faulted_dfs.records_written()),
        static_cast<long long>(baseline_dfs.bytes_written()),
        static_cast<long long>(baseline_dfs.records_written()));
    return outcome;
  }
  if (faulted_dfs.live_bytes() != baseline_dfs.live_bytes() ||
      faulted_dfs.live_records() != baseline_dfs.live_records()) {
    outcome.mismatch = StrFormat(
        "DFS live datasets diverged: %lld bytes vs baseline %lld",
        static_cast<long long>(faulted_dfs.live_bytes()),
        static_cast<long long>(baseline_dfs.live_bytes()));
    return outcome;
  }
  // Committed writes must be exactly the live datasets: every part file is
  // committed once, never re-committed by a discarded attempt.
  if (faulted_dfs.bytes_written() != faulted_dfs.live_bytes()) {
    outcome.mismatch = StrFormat(
        "DFS bytes_written %lld != live bytes %lld (phantom attempt bytes)",
        static_cast<long long>(faulted_dfs.bytes_written()),
        static_cast<long long>(faulted_dfs.live_bytes()));
    return outcome;
  }
  return outcome;
}

SchedulerChaosOutcome RunSchedulerChaosWorld(
    const SchedulerChaosOptions& options) {
  SchedulerChaosOutcome outcome;
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
      Algorithm::kControlledReplicate,
      Algorithm::kControlledReplicateInLimit};
  constexpr QueryShape kShapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                                    QueryShape::kStar4, QueryShape::kCycle3};
  constexpr PredicateMix kMixes[] = {PredicateMix::kOverlapOnly,
                                     PredicateMix::kRangeOnly,
                                     PredicateMix::kHybrid};
  const int num_jobs = options.num_jobs;

  // Per-job worlds and serial fault-free baselines, computed outside the
  // scheduler so the concurrent fleet has an independent ground truth.
  std::vector<Query> queries;
  std::vector<std::vector<std::vector<Rect>>> datasets;
  std::vector<StatusOr<JoinRunResult>> baselines;
  std::vector<FaultPlan> plans;
  queries.reserve(static_cast<size_t>(num_jobs));
  datasets.reserve(static_cast<size_t>(num_jobs));
  plans.reserve(static_cast<size_t>(num_jobs));
  for (int i = 0; i < num_jobs; ++i) {
    WorldConfig config;
    config.shape = kShapes[i % 4];
    config.mix = kMixes[i % 3];
    config.integer_coords = (i % 2 == 1);
    config.seed = options.base_seed * 1000003 +
                  static_cast<uint64_t>(i) * 7919 + 17;
    queries.push_back(MakeWorldQuery(config));
    datasets.push_back(MakeWorldData(config, queries.back().num_relations()));

    RunnerOptions runner;
    runner.algorithm = kAlgorithms[i % 4];
    baselines.push_back(RunSpatialJoin(queries[static_cast<size_t>(i)],
                                       datasets[static_cast<size_t>(i)],
                                       runner));
    if (!baselines.back().ok()) {
      outcome.mismatch =
          StrFormat("baseline %d failed: %s", i,
                    baselines.back().status().ToString().c_str());
      return outcome;
    }
    plans.push_back(FaultPlan::Seeded(
        options.base_seed * 6364136223846793005ull +
            static_cast<uint64_t>(i) * 104729 + 3,
        options.crash_prob, options.flaky_prob, options.slow_prob));
  }

  RetryPolicy retry;
  retry.sleep = [](double) {};  // Virtual clock, as in RunChaosWorld.

  std::vector<JobHandle> handles;
  std::vector<bool> cancel_landed(static_cast<size_t>(num_jobs), false);
  {
    SchedulerOptions sched_options;
    sched_options.pool = options.pool;
    sched_options.max_in_flight = options.max_in_flight;
    sched_options.max_queued = num_jobs;
    JobScheduler scheduler(sched_options);
    for (int i = 0; i < num_jobs; ++i) {
      JobSpec spec;
      spec.query = queries[static_cast<size_t>(i)];
      spec.borrowed_relations = &datasets[static_cast<size_t>(i)];
      spec.options.algorithm = kAlgorithms[i % 4];
      spec.options.context.faults = &plans[static_cast<size_t>(i)];
      spec.options.context.retry = &retry;
      StatusOr<JobHandle> handle = scheduler.Submit(std::move(spec));
      if (!handle.ok()) {
        outcome.mismatch = StrFormat(
            "submit %d rejected: %s", i, handle.status().ToString().c_str());
        return outcome;
      }
      handles.push_back(std::move(handle.value()));
    }
    // Cancellations race the drivers: whichever jobs are still queued die,
    // anything already running must finish with its exact result.
    if (options.cancel_every > 0) {
      for (int i = options.cancel_every - 1; i < num_jobs;
           i += options.cancel_every) {
        cancel_landed[static_cast<size_t>(i)] =
            handles[static_cast<size_t>(i)].Cancel();
      }
    }
    // Scheduler destruction drains every admitted job.
  }

  for (int i = 0; i < num_jobs; ++i) {
    const StatusOr<JoinRunResult>& result =
        handles[static_cast<size_t>(i)].Wait();
    if (cancel_landed[static_cast<size_t>(i)]) {
      ++outcome.cancelled;
      if (result.ok() ||
          result.status().code() != StatusCode::kFailedPrecondition) {
        outcome.mismatch = StrFormat(
            "cancelled job %d did not fail with FailedPrecondition", i);
        return outcome;
      }
      continue;
    }
    ++outcome.survived;
    if (!result.ok()) {
      outcome.mismatch = StrFormat("job %d failed: %s", i,
                                   result.status().ToString().c_str());
      return outcome;
    }
    const JoinRunResult& baseline = baselines[static_cast<size_t>(i)].value();
    if (result.value().tuples != baseline.tuples ||
        result.value().num_tuples != baseline.num_tuples) {
      outcome.mismatch = StrFormat(
          "job %d diverged from its serial baseline (%zu vs %zu tuples)", i,
          result.value().tuples.size(), baseline.tuples.size());
      return outcome;
    }
    outcome.mismatch = CompareJobStats(baseline.stats, result.value().stats);
    if (!outcome.mismatch.empty()) {
      outcome.mismatch =
          StrFormat("job %d: %s", i, outcome.mismatch.c_str());
      return outcome;
    }
    for (const JobStats& job : result.value().stats.jobs) {
      if (job.job_id != handles[static_cast<size_t>(i)].id()) {
        outcome.mismatch = StrFormat(
            "job %d stats attributed to submission %lld, expected %lld", i,
            static_cast<long long>(job.job_id),
            static_cast<long long>(handles[static_cast<size_t>(i)].id()));
        return outcome;
      }
      for (const PhaseFaultStats* f : {&job.map_faults, &job.reduce_faults}) {
        outcome.attempts += f->attempts;
        outcome.retries += f->retries;
        outcome.speculative += f->speculative;
        outcome.wasted_records += f->wasted_records;
      }
    }
  }
  return outcome;
}

}  // namespace mwsj::testing
