#ifndef MWSJ_TESTS_TESTING_CHAOS_H_
#define MWSJ_TESTS_TESTING_CHAOS_H_

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "core/runner.h"
#include "mapreduce/fault.h"
#include "testing/differential.h"
#include "testing/world.h"

namespace mwsj::testing {

/// Chaos-test harness for the engine's exactly-once fault recovery.
///
/// One chaos world runs a randomized join three ways — a brute-force
/// oracle, a fault-free baseline, and under a seeded deterministic
/// FaultPlan — and cross-checks that fault injection is invisible in
/// everything except the fault accounting itself: byte-identical tuples,
/// user counters, shuffle statistics, and DFS byte accounting.
///
/// Since the differential-harness factoring this is a thin adapter: it
/// assembles the multiway-join DifferentialWorkload (brute-force oracle +
/// RunSpatialJoin over the world's seeded grid geometry) and delegates to
/// RunDifferentialWorld (testing/differential.h), which owns the
/// oracle/baseline/faulted execution and every cross-check.

struct ChaosOptions {
  /// Seed of the FaultPlan::Seeded plan applied to the faulted run.
  uint64_t fault_seed = 1;
  /// Per-attempt fault probabilities. The defaults are brutal compared to
  /// any real cluster (~20% of attempts fault) so even a 9-task job
  /// usually retries something.
  double crash_prob = 0.08;
  double flaky_prob = 0.08;
  double slow_prob = 0.04;
  /// Worker pool for all three runs; null = unthreaded. Fault plans are
  /// keyed by (phase, task, attempt), so the outcome must not depend on
  /// this.
  ThreadPool* pool = nullptr;
  /// Shuffle memory budget of the faulted run. The fault-free baseline is
  /// always pinned to the in-memory shuffle, so any positive value here
  /// asserts the out-of-core path (sorted spill runs + k-way merge,
  /// DESIGN.md §2.13) is byte-identical to the in-memory one — on top of
  /// the fault axis. Tiny values (a few bytes) force every mapper chunk to
  /// flush. 0 inherits MWSJ_SHUFFLE_BUDGET like any run.
  int64_t shuffle_memory_budget = 0;
  /// When set, replaces the Seeded(fault_seed, ...) plan on the faulted
  /// run — for targeted injections such as a crash mid-spill-flush
  /// (FaultPlan::Inject(FaultPhase::kSpill, chunk, attempt, kind)).
  const FaultPlan* fault_plan = nullptr;
};

/// What one chaos world observed — exactly the differential harness's
/// outcome (the adapter adds no fields of its own).
using ChaosOutcome = DifferentialOutcome;

/// Runs one chaos world for `algorithm`. Deterministic: the same
/// (config, algorithm, options) triple always yields the same outcome,
/// threaded or not. No real sleeps — the faulted run's retry policy
/// injects a virtual backoff clock.
ChaosOutcome RunChaosWorld(const WorldConfig& config, Algorithm algorithm,
                           const ChaosOptions& options);

/// Chaos configuration for the scheduler core: a fleet of concurrent
/// mixed-algorithm jobs on one JobScheduler, each under its own seeded
/// fault plan (in-flight task attempts are killed and re-executed), with
/// a deterministic subset of submissions cancelled from the queue.
struct SchedulerChaosOptions {
  /// Derives every world seed and per-job fault seed.
  uint64_t base_seed = 0;
  /// Concurrent submissions per world (mixed algorithms, rotating).
  int num_jobs = 8;
  /// Shared worker pool for all jobs' engine tasks; null = inline.
  ThreadPool* pool = nullptr;
  /// Concurrent driver slots of the scheduler under test.
  int max_in_flight = 3;
  /// Per-attempt fault probabilities of each job's seeded plan.
  double crash_prob = 0.08;
  double flaky_prob = 0.08;
  double slow_prob = 0.04;
  /// Every n-th submission gets a Cancel() attempt right after the batch
  /// is submitted. Cancellation races admission by design: a job that
  /// already started must run to its exact result; only still-queued jobs
  /// die. 0 disables cancellation.
  int cancel_every = 3;
};

/// What one scheduler chaos world observed across its job fleet.
struct SchedulerChaosOutcome {
  /// Fault-recovery tallies summed over every surviving job.
  int64_t attempts = 0;
  int64_t retries = 0;
  int64_t speculative = 0;
  int64_t wasted_records = 0;

  /// Submissions whose Cancel() landed while queued (they must fail with
  /// FailedPrecondition) vs. jobs that ran to completion.
  int64_t cancelled = 0;
  int64_t survived = 0;

  /// Empty when every surviving job was byte-identical to its own serial
  /// fault-free baseline (tuples, statistics, counters) with correct
  /// per-job attribution; else describes the first divergence.
  std::string mismatch;
  bool ok() const { return mismatch.empty(); }
};

/// Runs one scheduler chaos world: `num_jobs` randomized worlds submitted
/// concurrently to a single JobScheduler, fault plans killing in-flight
/// task attempts, cancellations racing the queue. Every job that is not
/// cancelled must produce exactly the tuples and statistics of its serial,
/// fault-free, unscheduled baseline. No real sleeps.
SchedulerChaosOutcome RunSchedulerChaosWorld(
    const SchedulerChaosOptions& options);

}  // namespace mwsj::testing

#endif  // MWSJ_TESTS_TESTING_CHAOS_H_
