#ifndef MWSJ_TESTS_TESTING_CHAOS_H_
#define MWSJ_TESTS_TESTING_CHAOS_H_

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "core/runner.h"
#include "testing/world.h"

namespace mwsj::testing {

/// Chaos-test harness for the engine's exactly-once fault recovery.
///
/// One chaos world runs a randomized join three ways — a brute-force
/// oracle, a fault-free baseline, and under a seeded deterministic
/// FaultPlan — and cross-checks that fault injection is invisible in
/// everything except the fault accounting itself: byte-identical tuples,
/// user counters, shuffle statistics, and DFS byte accounting.

struct ChaosOptions {
  /// Seed of the FaultPlan::Seeded plan applied to the faulted run.
  uint64_t fault_seed = 1;
  /// Per-attempt fault probabilities. The defaults are brutal compared to
  /// any real cluster (~20% of attempts fault) so even a 9-task job
  /// usually retries something.
  double crash_prob = 0.08;
  double flaky_prob = 0.08;
  double slow_prob = 0.04;
  /// Worker pool for all three runs; null = unthreaded. Fault plans are
  /// keyed by (phase, task, attempt), so the outcome must not depend on
  /// this.
  ThreadPool* pool = nullptr;
};

/// What one chaos world observed. The fault tallies aggregate the faulted
/// run's JobStats across jobs; callers typically sum them over many worlds
/// and assert the plans actually fired (retries > 0).
struct ChaosOutcome {
  int64_t attempts = 0;
  int64_t retries = 0;
  int64_t speculative = 0;
  int64_t wasted_records = 0;
  double wasted_seconds = 0;
  double backoff_seconds = 0;
  int64_t num_tuples = 0;

  /// Empty when the faulted run matched the brute-force oracle and the
  /// fault-free baseline everywhere; else describes the first divergence.
  std::string mismatch;
  bool ok() const { return mismatch.empty(); }
};

/// Runs one chaos world for `algorithm`. Deterministic: the same
/// (config, algorithm, options) triple always yields the same outcome,
/// threaded or not. No real sleeps — the faulted run's retry policy
/// injects a virtual backoff clock.
ChaosOutcome RunChaosWorld(const WorldConfig& config, Algorithm algorithm,
                           const ChaosOptions& options);

}  // namespace mwsj::testing

#endif  // MWSJ_TESTS_TESTING_CHAOS_H_
