// Randomized chaos property test: 100+ worlds of seeded fault plans swept
// over every distributed algorithm, threaded and unthreaded. Each world
// must produce byte-identical output, counters, and DFS accounting to a
// fault-free run (and the brute-force oracle) — the engine's exactly-once
// re-execution contract under crash, flaky-I/O, and straggler faults.
//
// MWSJ_CHAOS_SEED_BASE (env, default 0) shifts every world and fault seed;
// CI runs a small matrix of bases so the suite keeps exploring new plans
// while any failure stays reproducible from the logged config.

#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "testing/chaos.h"

namespace mwsj {
namespace {

using testing::ChaosOptions;
using testing::ChaosOutcome;
using testing::PredicateMix;
using testing::QueryShape;
using testing::WorldConfig;

constexpr int kWorldsPerCase = 13;  // x (4 algorithms x {serial, pool}) = 104.

uint64_t SeedBase() {
  const char* env = std::getenv("MWSJ_CHAOS_SEED_BASE");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

class ChaosTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, bool>> {};

TEST_P(ChaosTest, ExactlyOnceUnderSeededFaultPlans) {
  const Algorithm algorithm = std::get<0>(GetParam());
  const bool threaded = std::get<1>(GetParam());
  const uint64_t base = SeedBase();

  std::unique_ptr<ThreadPool> pool;
  if (threaded) pool = std::make_unique<ThreadPool>(4);

  constexpr QueryShape kShapes[] = {QueryShape::kChain3, QueryShape::kChain4,
                                    QueryShape::kStar4, QueryShape::kCycle3};
  constexpr PredicateMix kMixes[] = {PredicateMix::kOverlapOnly,
                                     PredicateMix::kRangeOnly,
                                     PredicateMix::kHybrid};

  ChaosOutcome total;
  for (int i = 0; i < kWorldsPerCase; ++i) {
    WorldConfig config;
    config.shape = kShapes[i % 4];
    config.mix = kMixes[i % 3];
    config.integer_coords = (i % 2 == 1);
    config.seed = base * 1000003 + static_cast<uint64_t>(i) * 7919 + 13;

    ChaosOptions options;
    options.fault_seed = base * 6364136223846793005ull +
                         static_cast<uint64_t>(i) * 104729 + 1;
    options.pool = pool.get();

    const ChaosOutcome outcome =
        testing::RunChaosWorld(config, algorithm, options);
    EXPECT_TRUE(outcome.ok())
        << AlgorithmName(algorithm) << (threaded ? " (pool)" : " (serial)")
        << " world " << i << " seed " << config.seed << " fault_seed "
        << options.fault_seed << ": " << outcome.mismatch;
    if (!outcome.ok()) break;

    total.attempts += outcome.attempts;
    total.retries += outcome.retries;
    total.speculative += outcome.speculative;
    total.wasted_records += outcome.wasted_records;
    total.backoff_seconds += outcome.backoff_seconds;
  }

  // The sweep is only meaningful if the plans actually fired: across 13
  // worlds at ~20% per-attempt fault probability, every case must see
  // retries, stragglers, and discarded work.
  EXPECT_GT(total.retries, 0) << "fault plans never fired";
  EXPECT_GT(total.speculative, 0) << "no straggler was ever re-executed";
  EXPECT_GT(total.wasted_records, 0) << "no attempt output was discarded";
  EXPECT_GT(total.backoff_seconds, 0) << "retries never backed off";
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<Algorithm, bool>>& info) {
  // AlgorithmName() strings ("2-way Cascade", "C-Rep") are not valid gtest
  // identifiers; map to clean ones.
  std::string name;
  switch (std::get<0>(info.param)) {
    case Algorithm::kTwoWayCascade: name = "Cascade"; break;
    case Algorithm::kAllReplicate: name = "AllReplicate"; break;
    case Algorithm::kControlledReplicate: name = "CRep"; break;
    case Algorithm::kControlledReplicateInLimit: name = "CRepL"; break;
    default: name = "Unknown"; break;
  }
  return name + (std::get<1>(info.param) ? "Pool" : "Serial");
}

INSTANTIATE_TEST_SUITE_P(
    SeededFaultPlans, ChaosTest,
    ::testing::Combine(::testing::Values(Algorithm::kTwoWayCascade,
                                         Algorithm::kAllReplicate,
                                         Algorithm::kControlledReplicate,
                                         Algorithm::kControlledReplicateInLimit),
                       ::testing::Bool()),
    CaseName);

// Out-of-core chaos: the same worlds with a shuffle budget so small that
// every mapper chunk flushes its buckets as sorted spill runs and every
// reducer k-way merges them back. The fault-free baseline inside
// RunChaosWorld stays pinned to the in-memory shuffle, so each world
// asserts the spill path byte-identical against BOTH the brute-force
// oracle and the in-memory run — while the seeded plan also faults the
// spill flushes themselves (FaultPhase::kSpill).
TEST(SpillChaosTest, TinyBudgetsStayByteIdenticalUnderFaults) {
  const uint64_t base = SeedBase();
  ThreadPool pool(4);
  constexpr Algorithm kAlgorithms[] = {
      Algorithm::kTwoWayCascade, Algorithm::kAllReplicate,
      Algorithm::kControlledReplicate,
      Algorithm::kControlledReplicateInLimit};
  constexpr PredicateMix kMixes[] = {PredicateMix::kOverlapOnly,
                                     PredicateMix::kRangeOnly,
                                     PredicateMix::kHybrid};
  // One byte forces every non-empty chunk out of core; the larger budgets
  // leave a mix of spilled and resident chunks in one shuffle.
  constexpr int64_t kBudgets[] = {1, 512, 8 * 1024};

  ChaosOutcome total;
  for (int i = 0; i < 12; ++i) {
    WorldConfig config;
    config.shape = static_cast<QueryShape>(i % 4);
    config.mix = kMixes[i % 3];
    config.integer_coords = (i % 2 == 1);
    config.seed = base * 1000003 + static_cast<uint64_t>(i) * 7919 + 29;

    ChaosOptions options;
    options.fault_seed = base * 6364136223846793005ull +
                         static_cast<uint64_t>(i) * 104729 + 11;
    options.pool = (i % 2 == 0) ? &pool : nullptr;
    options.shuffle_memory_budget = kBudgets[i % 3];

    const ChaosOutcome outcome = testing::RunChaosWorld(
        config, kAlgorithms[i % 4], options);
    EXPECT_TRUE(outcome.ok())
        << AlgorithmName(kAlgorithms[i % 4]) << " spill world " << i
        << " budget " << options.shuffle_memory_budget << " seed "
        << config.seed << " fault_seed " << options.fault_seed << ": "
        << outcome.mismatch;
    if (!outcome.ok()) break;

    total.retries += outcome.retries;
    total.spilled_runs += outcome.spilled_runs;
    total.spill_flush_retries += outcome.spill_flush_retries;
    total.spill_wasted_flush_bytes += outcome.spill_wasted_flush_bytes;
  }

  EXPECT_GT(total.spilled_runs, 0) << "no chunk ever went out of core";
  EXPECT_GT(total.spill_flush_retries, 0)
      << "no spill flush was ever faulted";
  EXPECT_GT(total.spill_wasted_flush_bytes, 0)
      << "no half-staged flush was ever discarded";
}

// Pure spill parity, no faults at all: a 1-byte budget (everything out of
// core, maximum merge width) must reproduce the in-memory run exactly.
TEST(SpillChaosTest, FaultFreeSpillMatchesInMemory) {
  for (const Algorithm algorithm :
       {Algorithm::kTwoWayCascade, Algorithm::kControlledReplicate}) {
    WorldConfig config;
    config.mix = PredicateMix::kHybrid;
    config.seed = SeedBase() * 131 + 71;

    ChaosOptions options;
    options.crash_prob = 0;
    options.flaky_prob = 0;
    options.slow_prob = 0;
    options.shuffle_memory_budget = 1;

    const ChaosOutcome outcome =
        testing::RunChaosWorld(config, algorithm, options);
    EXPECT_TRUE(outcome.ok())
        << AlgorithmName(algorithm) << ": " << outcome.mismatch;
    EXPECT_GT(outcome.spilled_runs, 0);
    EXPECT_EQ(outcome.spill_flush_retries, 0);
  }
}

// Targeted injection: attempts to flush spill runs crash outright and die
// mid-flush (half the buckets staged, then the stage is dropped). The
// retried flush must leave no phantom bytes and the merged output must
// still match the oracle and the in-memory baseline.
TEST(SpillChaosTest, CrashMidSpillFlushRecovers) {
  FaultPlan plan;  // No seeded layer: only the exact injected faults fire.
  plan.Inject(FaultPhase::kSpill, 0, 0, FaultKind::kCrash);
  plan.Inject(FaultPhase::kSpill, 0, 1, FaultKind::kFlakyIo);  // Double hit.
  plan.Inject(FaultPhase::kSpill, 1, 0, FaultKind::kFlakyIo);
  plan.Inject(FaultPhase::kSpill, 2, 0, FaultKind::kSlow);

  WorldConfig config;
  config.shape = QueryShape::kChain4;
  config.mix = PredicateMix::kHybrid;
  config.seed = SeedBase() * 977 + 3;

  ChaosOptions options;
  options.shuffle_memory_budget = 1;  // Every chunk must flush.
  options.fault_plan = &plan;

  const ChaosOutcome outcome = testing::RunChaosWorld(
      config, Algorithm::kControlledReplicate, options);
  EXPECT_TRUE(outcome.ok()) << outcome.mismatch;
  EXPECT_GT(outcome.spilled_runs, 0);
  // Chunk 0 faults twice, chunk 1 once — in every job of the cascade.
  EXPECT_GE(outcome.spill_flush_retries, 3);
  EXPECT_GT(outcome.spill_wasted_flush_bytes, 0)
      << "the mid-flush abort never staged partial buckets";
}

// The same fault plan must recover identically with and without a worker
// pool: the plan is keyed by (phase, task, attempt), never by thread.
TEST(ChaosDeterminism, PoolInvariantFaultAccounting) {
  WorldConfig config;
  config.mix = PredicateMix::kHybrid;
  config.seed = SeedBase() * 31 + 5;

  ChaosOptions serial_options;
  serial_options.fault_seed = SeedBase() + 42;
  const ChaosOutcome serial = testing::RunChaosWorld(
      config, Algorithm::kControlledReplicate, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.mismatch;

  ThreadPool pool(4);
  ChaosOptions pool_options = serial_options;
  pool_options.pool = &pool;
  const ChaosOutcome threaded = testing::RunChaosWorld(
      config, Algorithm::kControlledReplicate, pool_options);
  ASSERT_TRUE(threaded.ok()) << threaded.mismatch;

  EXPECT_EQ(serial.attempts, threaded.attempts);
  EXPECT_EQ(serial.retries, threaded.retries);
  EXPECT_EQ(serial.speculative, threaded.speculative);
  EXPECT_EQ(serial.wasted_records, threaded.wasted_records);
  EXPECT_EQ(serial.num_tuples, threaded.num_tuples);
  EXPECT_DOUBLE_EQ(serial.backoff_seconds, threaded.backoff_seconds);
}

// Scheduler-core chaos: fleets of concurrent mixed-algorithm jobs whose
// in-flight task attempts are killed by per-job fault plans while queued
// submissions are cancelled underneath them. Every surviving job must be
// byte-identical to its serial fault-free baseline, with stats attributed
// to the right submission id.
TEST(SchedulerChaosTest, ConcurrentJobFleetsSurviveKillsAndCancels) {
  const uint64_t base = SeedBase();
  ThreadPool pool(4);

  testing::SchedulerChaosOutcome total;
  for (int world = 0; world < 6; ++world) {
    testing::SchedulerChaosOptions options;
    options.base_seed = base * 424243 + static_cast<uint64_t>(world) * 131 + 7;
    options.num_jobs = 8;
    options.pool = (world % 2 == 0) ? &pool : nullptr;
    options.max_in_flight = 2 + world % 3;
    // Worlds alternate between pure kill-chaos and kill+cancel chaos.
    options.cancel_every = (world % 3 == 0) ? 0 : 3;

    const testing::SchedulerChaosOutcome outcome =
        testing::RunSchedulerChaosWorld(options);
    EXPECT_TRUE(outcome.ok())
        << "world " << world << " base_seed " << options.base_seed << ": "
        << outcome.mismatch;
    if (!outcome.ok()) break;

    total.attempts += outcome.attempts;
    total.retries += outcome.retries;
    total.speculative += outcome.speculative;
    total.wasted_records += outcome.wasted_records;
    total.cancelled += outcome.cancelled;
    total.survived += outcome.survived;
  }

  // The sweep must have exercised all three chaos axes: kills that forced
  // retries, discarded attempt output, and jobs that actually survived.
  EXPECT_GT(total.retries, 0) << "no in-flight attempt was ever killed";
  EXPECT_GT(total.wasted_records, 0) << "no attempt output was discarded";
  EXPECT_GT(total.survived, 0);
}

}  // namespace
}  // namespace mwsj
