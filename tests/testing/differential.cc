#include "testing/differential.h"

#include <cstddef>
#include <utility>

#include "common/str_format.h"
#include "mapreduce/dfs.h"

namespace mwsj::testing {

std::string CompareJobStats(const RunStats& baseline, const RunStats& faulted) {
  if (baseline.jobs.size() != faulted.jobs.size()) {
    return StrFormat("job count %zu vs %zu", baseline.jobs.size(),
                     faulted.jobs.size());
  }
  for (size_t j = 0; j < baseline.jobs.size(); ++j) {
    const JobStats& b = baseline.jobs[j];
    const JobStats& f = faulted.jobs[j];
    if (b.job_name != f.job_name) {
      return StrFormat("job %zu name '%s' vs '%s'", j, b.job_name.c_str(),
                       f.job_name.c_str());
    }
    auto diff = [&](const char* what, int64_t bv, int64_t fv) {
      return StrFormat("job '%s' %s %lld vs %lld under faults",
                       b.job_name.c_str(), what, static_cast<long long>(bv),
                       static_cast<long long>(fv));
    };
    if (b.map_input_records != f.map_input_records) {
      return diff("map_input_records", b.map_input_records,
                  f.map_input_records);
    }
    if (b.intermediate_records != f.intermediate_records) {
      return diff("intermediate_records", b.intermediate_records,
                  f.intermediate_records);
    }
    if (b.intermediate_bytes != f.intermediate_bytes) {
      return diff("intermediate_bytes", b.intermediate_bytes,
                  f.intermediate_bytes);
    }
    if (b.reduce_output_records != f.reduce_output_records) {
      return diff("reduce_output_records", b.reduce_output_records,
                  f.reduce_output_records);
    }
    if (b.reduce_output_bytes != f.reduce_output_bytes) {
      return diff("reduce_output_bytes", b.reduce_output_bytes,
                  f.reduce_output_bytes);
    }
    if (b.per_reducer_records != f.per_reducer_records) {
      return StrFormat("job '%s' per-reducer records diverged under faults",
                       b.job_name.c_str());
    }
    if (b.user_counters != f.user_counters) {
      for (const auto& [name, value] : b.user_counters) {
        const auto it = f.user_counters.find(name);
        if (it == f.user_counters.end()) {
          return StrFormat("job '%s' counter '%s' missing under faults",
                           b.job_name.c_str(), name.c_str());
        }
        if (it->second != value) {
          return diff(name.c_str(), value, it->second);
        }
      }
      return StrFormat("job '%s' has extra counters under faults",
                       b.job_name.c_str());
    }
  }
  return "";
}

namespace {

// Restores the ambient dispatch table even on early return.
class IsaPin {
 public:
  explicit IsaPin(const std::optional<simd::Isa>& isa)
      : original_(simd::ActiveIsa()) {
    if (isa.has_value()) simd::SetIsaForTesting(*isa);
  }
  ~IsaPin() { simd::SetIsaForTesting(original_); }
  IsaPin(const IsaPin&) = delete;
  IsaPin& operator=(const IsaPin&) = delete;

 private:
  simd::Isa original_;
};

}  // namespace

DifferentialOutcome RunDifferentialWorld(const DifferentialWorkload& workload,
                                         const DifferentialOptions& options) {
  DifferentialOutcome outcome;
  const std::vector<IdTuple> expected = workload.oracle();

  // The baseline is the in-memory, fault-free, ambient-ISA ground truth:
  // whatever the variant's perturbations, its output must match this.
  Dfs baseline_dfs;
  ExecutionContext baseline_ctx;
  baseline_ctx.pool = options.pool;
  baseline_ctx.dfs = &baseline_dfs;
  baseline_ctx.options.shuffle_memory_budget = -1;
  const StatusOr<JoinRunResult> baseline = workload.run(baseline_ctx);
  if (!baseline.ok()) {
    outcome.mismatch = StrFormat("%s: baseline run failed: %s",
                                 workload.name.c_str(),
                                 baseline.status().ToString().c_str());
    return outcome;
  }

  const FaultPlan plan = FaultPlan::Seeded(
      options.fault_seed, options.crash_prob, options.flaky_prob,
      options.slow_prob);
  RetryPolicy retry;
  retry.sleep = [](double) {};  // Virtual clock: differential sweeps never
                                // sleep.
  Dfs faulted_dfs;
  ExecutionContext variant_ctx;
  variant_ctx.pool = options.pool;
  variant_ctx.dfs = &faulted_dfs;
  variant_ctx.options.shuffle_memory_budget = options.shuffle_memory_budget;
  variant_ctx.faults =
      options.fault_plan != nullptr ? options.fault_plan : &plan;
  variant_ctx.retry = &retry;
  StatusOr<JoinRunResult> faulted = Status::Internal("variant did not run");
  {
    IsaPin pin(options.isa);
    faulted = workload.run(variant_ctx);
  }
  if (!faulted.ok()) {
    outcome.mismatch = StrFormat("%s: faulted run failed: %s",
                                 workload.name.c_str(),
                                 faulted.status().ToString().c_str());
    return outcome;
  }

  for (const JobStats& job : faulted.value().stats.jobs) {
    for (const PhaseFaultStats* f : {&job.map_faults, &job.reduce_faults}) {
      outcome.attempts += f->attempts;
      outcome.retries += f->retries;
      outcome.speculative += f->speculative;
      outcome.wasted_records += f->wasted_records;
      outcome.wasted_seconds += f->wasted_seconds;
      outcome.backoff_seconds += f->backoff_seconds;
    }
    outcome.spilled_runs += job.spill.spilled_runs;
    outcome.spill_flush_retries += job.spill.flush_retries;
    outcome.spill_wasted_flush_bytes += job.spill.wasted_flush_bytes;
  }
  outcome.num_tuples = faulted.value().num_tuples;

  // Exactly-once, checked in rising order of subtlety: the oracle, the
  // byte-identical tuple vector, the per-job statistics and counters, and
  // the DFS ledger (no phantom bytes from discarded attempts).
  if (faulted.value().tuples != expected) {
    outcome.mismatch = StrFormat(
        "faulted run diverged from brute force (%zu vs %zu tuples)",
        faulted.value().tuples.size(), expected.size());
    return outcome;
  }
  if (faulted.value().tuples != baseline.value().tuples) {
    outcome.mismatch = "faulted tuples != fault-free tuples";
    return outcome;
  }
  if (faulted.value().num_tuples != baseline.value().num_tuples) {
    outcome.mismatch = StrFormat(
        "num_tuples %lld vs %lld under faults",
        static_cast<long long>(baseline.value().num_tuples),
        static_cast<long long>(faulted.value().num_tuples));
    return outcome;
  }
  outcome.mismatch =
      CompareJobStats(baseline.value().stats, faulted.value().stats);
  if (!outcome.mismatch.empty()) return outcome;
  if (faulted_dfs.bytes_written() != baseline_dfs.bytes_written() ||
      faulted_dfs.records_written() != baseline_dfs.records_written()) {
    outcome.mismatch = StrFormat(
        "DFS write ledger diverged: %lld bytes / %lld records vs baseline "
        "%lld / %lld",
        static_cast<long long>(faulted_dfs.bytes_written()),
        static_cast<long long>(faulted_dfs.records_written()),
        static_cast<long long>(baseline_dfs.bytes_written()),
        static_cast<long long>(baseline_dfs.records_written()));
    return outcome;
  }
  if (faulted_dfs.live_bytes() != baseline_dfs.live_bytes() ||
      faulted_dfs.live_records() != baseline_dfs.live_records()) {
    outcome.mismatch = StrFormat(
        "DFS live datasets diverged: %lld bytes vs baseline %lld",
        static_cast<long long>(faulted_dfs.live_bytes()),
        static_cast<long long>(baseline_dfs.live_bytes()));
    return outcome;
  }
  // Committed writes must be exactly the live datasets: every part file is
  // committed once, never re-committed by a discarded attempt.
  if (faulted_dfs.bytes_written() != faulted_dfs.live_bytes()) {
    outcome.mismatch = StrFormat(
        "DFS bytes_written %lld != live bytes %lld (phantom attempt bytes)",
        static_cast<long long>(faulted_dfs.bytes_written()),
        static_cast<long long>(faulted_dfs.live_bytes()));
    return outcome;
  }
  return outcome;
}

}  // namespace mwsj::testing
