#ifndef MWSJ_TESTS_TESTING_DIFFERENTIAL_H_
#define MWSJ_TESTS_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/records.h"
#include "localjoin/brute_force.h"
#include "mapreduce/fault.h"
#include "simd/simd.h"

namespace mwsj::testing {

/// Generic differential harness: runs *any* workload three ways — a
/// brute-force oracle, a fault-free in-memory baseline, and a variant
/// under a seeded FaultPlan / shuffle budget / pinned SIMD ISA — and
/// cross-checks that the perturbation axes are invisible in everything
/// except their own accounting: byte-identical tuples, user counters,
/// shuffle statistics, and the DFS write ledger. The chaos layer
/// (testing/chaos.h) is a multiway-join adapter over this harness; the
/// knn-mr differential suite drives it directly.

/// A workload under differential test. The harness owns the perturbation
/// axes and hands the workload a fully assembled ExecutionContext (pool,
/// faults, retry policy, DFS, shuffle budget); the workload folds it into
/// its own options verbatim and runs the real pipeline.
struct DifferentialWorkload {
  /// Label used in mismatch messages.
  std::string name;

  /// Scalar brute-force oracle — the expected tuple vector, computed once
  /// outside the engine.
  std::function<std::vector<IdTuple>()> oracle;

  /// One engine run under the given context. Invoked twice per world:
  /// for the fault-free in-memory baseline and for the perturbed variant.
  /// Must be deterministic given the context (no shared mutable state
  /// across invocations — e.g. construct catalogs inside, or none).
  std::function<StatusOr<JoinRunResult>(const ExecutionContext& ctx)> run;
};

/// Perturbation axes of one differential world (a superset of the chaos
/// layer's ChaosOptions).
struct DifferentialOptions {
  /// Seed of the FaultPlan::Seeded plan applied to the variant run.
  uint64_t fault_seed = 1;
  /// Per-attempt fault probabilities — brutal by design (~20% of attempts
  /// fault) so even small jobs usually retry something.
  double crash_prob = 0.08;
  double flaky_prob = 0.08;
  double slow_prob = 0.04;
  /// Worker pool for baseline and variant; null = unthreaded. Fault plans
  /// key on (phase, task, attempt), so outcomes must not depend on this.
  ThreadPool* pool = nullptr;
  /// Shuffle memory budget of the variant run. The baseline is always
  /// pinned to the in-memory shuffle, so any positive value asserts the
  /// out-of-core path is byte-identical on top of the fault axis. 0
  /// inherits MWSJ_SHUFFLE_BUDGET like any run.
  int64_t shuffle_memory_budget = 0;
  /// When set, replaces the Seeded(fault_seed, ...) plan on the variant —
  /// for targeted injections such as a crash mid-spill-flush
  /// (FaultPlan::Inject(FaultPhase::kSpill, chunk, attempt, kind)).
  const FaultPlan* fault_plan = nullptr;
  /// When set, the variant run executes under this SIMD dispatch table
  /// (simd::SetIsaForTesting, restored afterwards); the baseline keeps the
  /// ambient ISA, so pinning anything other than the ambient one asserts
  /// cross-ISA byte-identity on top of the other axes. Must be available.
  std::optional<simd::Isa> isa;
};

/// What one differential world observed. The fault tallies aggregate the
/// variant run's JobStats across jobs; callers typically sum them over
/// many worlds and assert the plans actually fired (retries > 0).
struct DifferentialOutcome {
  int64_t attempts = 0;
  int64_t retries = 0;
  int64_t speculative = 0;
  int64_t wasted_records = 0;
  double wasted_seconds = 0;
  double backoff_seconds = 0;
  int64_t num_tuples = 0;

  /// Out-of-core tallies of the variant run (JobStats::spill summed over
  /// jobs); zero unless a shuffle budget made chunks flush sorted runs.
  int64_t spilled_runs = 0;
  int64_t spill_flush_retries = 0;
  int64_t spill_wasted_flush_bytes = 0;

  /// Empty when the variant run matched the brute-force oracle and the
  /// fault-free baseline everywhere; else describes the first divergence.
  std::string mismatch;
  bool ok() const { return mismatch.empty(); }
};

/// Runs one differential world. Deterministic: the same (workload,
/// options) pair always yields the same outcome, threaded or not. No real
/// sleeps — the variant's retry policy injects a virtual backoff clock.
DifferentialOutcome RunDifferentialWorld(const DifferentialWorkload& workload,
                                         const DifferentialOptions& options);

/// First divergence between two runs' job statistics, or "" when they are
/// byte-identical in every exactly-once quantity (fault accounting is
/// deliberately excluded — it is *supposed* to differ). Shared by this
/// harness and the scheduler chaos layer.
std::string CompareJobStats(const RunStats& baseline, const RunStats& faulted);

}  // namespace mwsj::testing

#endif  // MWSJ_TESTS_TESTING_DIFFERENTIAL_H_
