// Differential suite for the distributed kNN join: 100+ randomized worlds
// (50 serial + 50 pooled) run through the generic harness
// (testing/differential.h), each pinned simultaneously against the scalar
// brute-force oracle, the single-node KnnJoin, and a fault-free in-memory
// baseline while the variant run sweeps every perturbation axis at once —
// seeded fault plans (crash / flaky-I/O / straggler, including spill-flush
// faults), shuffle budgets from pinned-in-memory down to 1 byte, grid
// geometries from a single reducer to 4x4, and every SIMD ISA the host
// supports. Byte-identity everywhere is the tentpole contract of
// queries/knn_mr.h.
//
// MWSJ_CHAOS_SEED_BASE (env, default 0) shifts every world and fault seed,
// exactly like the multiway chaos sweep (chaos_test.cc).

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "queries/knn_mr.h"
#include "simd/simd.h"
#include "testing/differential.h"
#include "testing/world.h"

namespace mwsj {
namespace {

using testing::DifferentialOptions;
using testing::DifferentialOutcome;
using testing::DifferentialWorkload;
using testing::KnnOracleTuples;
using testing::KnnSingleNodeTuples;
using testing::KnnWorldConfig;
using testing::MakeKnnWorldData;
using testing::RunDifferentialWorld;

uint64_t SeedBase() {
  const char* env = std::getenv("MWSJ_CHAOS_SEED_BASE");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

std::vector<simd::Isa> AvailableIsas() {
  std::vector<simd::Isa> out;
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse, simd::Isa::kAvx2}) {
    if (simd::IsaAvailable(isa)) out.push_back(isa);
  }
  return out;
}

Query KnnQuery() { return MakeChainQuery(2, Predicate::Overlap()).value(); }

// Assembles the knn-mr workload for one world: the oracle is the scalar
// brute force, the run folds the harness's context into RunKnnJoinMr.
// Everything is captured by reference; the world outlives the harness call.
DifferentialWorkload MakeKnnWorkload(const Query& query,
                                     const std::vector<std::vector<Rect>>& data,
                                     const RunnerOptions& runner, int k) {
  DifferentialWorkload workload;
  workload.name = "knn-mr";
  workload.oracle = [&data, k] { return KnnOracleTuples(data[0], data[1], k); };
  workload.run = [&query, &data, &runner,
                  k](const ExecutionContext& ctx) {
    RunnerOptions options = runner;
    options.context = ctx;
    return RunKnnJoinMr(query, data, k, options);
  };
  return workload;
}

class KnnMrChaosTest : public ::testing::TestWithParam<bool> {};

TEST_P(KnnMrChaosTest, DifferentialWorldsStayByteIdentical) {
  const bool threaded = GetParam();
  const uint64_t base = SeedBase();
  std::unique_ptr<ThreadPool> pool;
  if (threaded) pool = std::make_unique<ThreadPool>(4);
  const std::vector<simd::Isa> isas = AvailableIsas();
  const Query query = KnnQuery();

  constexpr int kWorldsPerCase = 50;  // x {serial, pool} = 100 worlds.
  constexpr int kKs[] = {1, 2, 3, 8, 16};
  constexpr int kGrids[][2] = {{1, 1}, {1, 4}, {3, 3}, {5, 2}, {4, 4}};
  // -1 pins the in-memory shuffle; 1 spills every chunk; 512 and 16k mix
  // resident and spilled chunks; 0 inherits MWSJ_SHUFFLE_BUDGET.
  constexpr int64_t kBudgets[] = {-1, 1, 512, 16 * 1024, 0};

  DifferentialOutcome total;
  for (int i = 0; i < kWorldsPerCase; ++i) {
    KnnWorldConfig config;
    config.num_points = 40 + (i % 7) * 15;
    config.num_rects = 60 + (i % 11) * 20;
    config.with_duplicates = (i % 4 == 0);
    config.seed = base * 1000003 + static_cast<uint64_t>(i) * 7919 + 37;
    const std::vector<std::vector<Rect>> data = MakeKnnWorldData(config);
    const int k = kKs[i % 5];
    const auto& grid = kGrids[(i / 5) % 5];

    RunnerOptions runner;
    runner.grid_rows = grid[0];
    runner.grid_cols = grid[1];
    runner.space = Rect(0, 0, config.space_size, config.space_size);

    // Second pin: the single-node KnnJoin over the same grid must already
    // agree with the oracle in knn-mr's encoding.
    const std::vector<IdTuple> oracle = KnnOracleTuples(data[0], data[1], k);
    ASSERT_EQ(KnnSingleNodeTuples(data[0], data[1], k, *runner.space, grid[0],
                                  grid[1]),
              oracle)
        << "single-node kNN diverged, world " << i << " seed " << config.seed
        << " k " << k;

    const DifferentialWorkload workload =
        MakeKnnWorkload(query, data, runner, k);
    DifferentialOptions diff;
    diff.fault_seed = base * 6364136223846793005ull +
                      static_cast<uint64_t>(i) * 104729 + 23;
    diff.pool = pool.get();
    diff.shuffle_memory_budget = kBudgets[i % 5];
    diff.isa = isas[static_cast<size_t>(i) % isas.size()];

    const DifferentialOutcome outcome = RunDifferentialWorld(workload, diff);
    EXPECT_TRUE(outcome.ok())
        << (threaded ? "(pool)" : "(serial)") << " knn world " << i << " seed "
        << config.seed << " fault_seed " << diff.fault_seed << " k " << k
        << " grid " << grid[0] << "x" << grid[1] << " budget "
        << diff.shuffle_memory_budget << " isa "
        << simd::IsaName(*diff.isa) << ": " << outcome.mismatch;
    if (!outcome.ok()) break;

    total.attempts += outcome.attempts;
    total.retries += outcome.retries;
    total.speculative += outcome.speculative;
    total.wasted_records += outcome.wasted_records;
    total.backoff_seconds += outcome.backoff_seconds;
    total.spilled_runs += outcome.spilled_runs;
    total.spill_flush_retries += outcome.spill_flush_retries;
  }

  // The sweep is only meaningful if every perturbation axis actually
  // fired: retried attempts, re-executed stragglers, discarded output,
  // and chunks that went out of core.
  EXPECT_GT(total.retries, 0) << "fault plans never fired";
  EXPECT_GT(total.speculative, 0) << "no straggler was ever re-executed";
  EXPECT_GT(total.wasted_records, 0) << "no attempt output was discarded";
  EXPECT_GT(total.spilled_runs, 0) << "no chunk ever went out of core";
}

INSTANTIATE_TEST_SUITE_P(SeededFaultPlans, KnnMrChaosTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("Pool")
                                             : std::string("Serial");
                         });

// Pure spill parity, no faults: a 1-byte budget (everything out of core,
// maximum merge width) must reproduce the in-memory knn-mr run exactly.
TEST(KnnMrSpillChaosTest, FaultFreeSpillMatchesInMemory) {
  KnnWorldConfig config;
  config.with_duplicates = true;
  config.seed = SeedBase() * 131 + 83;
  const std::vector<std::vector<Rect>> data = MakeKnnWorldData(config);
  const Query query = KnnQuery();
  RunnerOptions runner;
  runner.grid_rows = 3;
  runner.grid_cols = 3;
  runner.space = Rect(0, 0, config.space_size, config.space_size);

  DifferentialOptions diff;
  diff.crash_prob = 0;
  diff.flaky_prob = 0;
  diff.slow_prob = 0;
  diff.shuffle_memory_budget = 1;

  const DifferentialOutcome outcome =
      RunDifferentialWorld(MakeKnnWorkload(query, data, runner, 4), diff);
  EXPECT_TRUE(outcome.ok()) << outcome.mismatch;
  EXPECT_GT(outcome.spilled_runs, 0);
  EXPECT_EQ(outcome.spill_flush_retries, 0);
}

// Targeted injection: spill flushes crash outright and die mid-flush while
// every knn-mr chunk is forced out of core. The retried flushes must leave
// no phantom bytes and the merged top-k must still match the oracle and
// the in-memory baseline.
TEST(KnnMrSpillChaosTest, CrashMidSpillFlushRecovers) {
  FaultPlan plan;  // No seeded layer: only the exact injected faults fire.
  plan.Inject(FaultPhase::kSpill, 0, 0, FaultKind::kCrash);
  plan.Inject(FaultPhase::kSpill, 0, 1, FaultKind::kFlakyIo);  // Double hit.
  plan.Inject(FaultPhase::kSpill, 1, 0, FaultKind::kFlakyIo);
  plan.Inject(FaultPhase::kSpill, 2, 0, FaultKind::kSlow);

  KnnWorldConfig config;
  config.seed = SeedBase() * 977 + 51;
  const std::vector<std::vector<Rect>> data = MakeKnnWorldData(config);
  const Query query = KnnQuery();
  RunnerOptions runner;
  runner.grid_rows = 4;
  runner.grid_cols = 4;
  runner.space = Rect(0, 0, config.space_size, config.space_size);

  DifferentialOptions diff;
  diff.shuffle_memory_budget = 1;  // Every chunk must flush.
  diff.fault_plan = &plan;

  const DifferentialOutcome outcome =
      RunDifferentialWorld(MakeKnnWorkload(query, data, runner, 3), diff);
  EXPECT_TRUE(outcome.ok()) << outcome.mismatch;
  EXPECT_GT(outcome.spilled_runs, 0);
  // Chunk 0 faults twice and chunk 1 once — in each of the three rounds.
  EXPECT_GE(outcome.spill_flush_retries, 3);
  EXPECT_GT(outcome.spill_wasted_flush_bytes, 0)
      << "the mid-flush abort never staged partial buckets";
}

// The same seeded plan must recover identically with and without a worker
// pool: plans key on (phase, task, attempt), never on threads.
TEST(KnnMrChaosDeterminism, PoolInvariantFaultAccounting) {
  KnnWorldConfig config;
  config.seed = SeedBase() * 31 + 9;
  const std::vector<std::vector<Rect>> data = MakeKnnWorldData(config);
  const Query query = KnnQuery();
  RunnerOptions runner;
  runner.grid_rows = 3;
  runner.grid_cols = 3;
  runner.space = Rect(0, 0, config.space_size, config.space_size);

  DifferentialOptions serial_options;
  serial_options.fault_seed = SeedBase() + 47;
  const DifferentialOutcome serial = RunDifferentialWorld(
      MakeKnnWorkload(query, data, runner, 5), serial_options);
  ASSERT_TRUE(serial.ok()) << serial.mismatch;

  ThreadPool pool(4);
  DifferentialOptions pool_options = serial_options;
  pool_options.pool = &pool;
  const DifferentialOutcome threaded = RunDifferentialWorld(
      MakeKnnWorkload(query, data, runner, 5), pool_options);
  ASSERT_TRUE(threaded.ok()) << threaded.mismatch;

  EXPECT_EQ(serial.attempts, threaded.attempts);
  EXPECT_EQ(serial.retries, threaded.retries);
  EXPECT_EQ(serial.speculative, threaded.speculative);
  EXPECT_EQ(serial.wasted_records, threaded.wasted_records);
  EXPECT_EQ(serial.num_tuples, threaded.num_tuples);
  EXPECT_DOUBLE_EQ(serial.backoff_seconds, threaded.backoff_seconds);
}

// The harness itself must fail loudly: a corrupted oracle (one tuple
// dropped) has to surface as a brute-force divergence, not pass silently.
TEST(DifferentialHarnessTest, FlagsOracleDivergence) {
  KnnWorldConfig config;
  config.num_points = 20;
  config.num_rects = 40;
  config.seed = 77;
  const std::vector<std::vector<Rect>> data = MakeKnnWorldData(config);
  const Query query = KnnQuery();
  RunnerOptions runner;
  runner.space = Rect(0, 0, config.space_size, config.space_size);

  DifferentialWorkload workload = MakeKnnWorkload(query, data, runner, 2);
  workload.oracle = [&data] {
    std::vector<IdTuple> broken = KnnOracleTuples(data[0], data[1], 2);
    broken.pop_back();
    return broken;
  };
  DifferentialOptions diff;
  diff.crash_prob = 0;
  diff.flaky_prob = 0;
  diff.slow_prob = 0;

  const DifferentialOutcome outcome = RunDifferentialWorld(workload, diff);
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.mismatch.find("diverged from brute force"),
            std::string::npos)
      << outcome.mismatch;
}

// A workload whose baseline run fails must be reported as such, with the
// workload's name in the message.
TEST(DifferentialHarnessTest, ReportsBaselineFailure) {
  DifferentialWorkload workload;
  workload.name = "always-broken";
  workload.oracle = [] { return std::vector<IdTuple>{}; };
  workload.run = [](const ExecutionContext&) {
    return StatusOr<JoinRunResult>(Status::Internal("boom"));
  };
  const DifferentialOutcome outcome =
      RunDifferentialWorld(workload, DifferentialOptions());
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.mismatch.find("always-broken"), std::string::npos);
  EXPECT_NE(outcome.mismatch.find("baseline run failed"), std::string::npos);
}

}  // namespace
}  // namespace mwsj
