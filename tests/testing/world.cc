#include "testing/world.h"

#include <cmath>

namespace mwsj::testing {

namespace {

Predicate EdgePredicate(const WorldConfig& config, int edge_index) {
  switch (config.mix) {
    case PredicateMix::kOverlapOnly:
      return Predicate::Overlap();
    case PredicateMix::kRangeOnly:
      return Predicate::Range(config.range_d);
    case PredicateMix::kHybrid:
      return (edge_index % 2 == 0) ? Predicate::Overlap()
                                   : Predicate::Range(config.range_d);
  }
  return Predicate::Overlap();
}

}  // namespace

Query MakeWorldQuery(const WorldConfig& config) {
  QueryBuilder b;
  int n = 0;
  std::vector<std::pair<int, int>> edges;
  switch (config.shape) {
    case QueryShape::kChain3:
      n = 3;
      edges = {{0, 1}, {1, 2}};
      break;
    case QueryShape::kChain4:
      n = 4;
      edges = {{0, 1}, {1, 2}, {2, 3}};
      break;
    case QueryShape::kStar4:
      n = 4;
      edges = {{0, 1}, {0, 2}, {0, 3}};
      break;
    case QueryShape::kCycle3:
      n = 3;
      edges = {{0, 1}, {1, 2}, {2, 0}};
      break;
  }
  for (int i = 0; i < n; ++i) b.AddRelation("R" + std::to_string(i + 1));
  for (size_t e = 0; e < edges.size(); ++e) {
    b.AddCondition(edges[e].first, edges[e].second,
                   EdgePredicate(config, static_cast<int>(e)));
  }
  StatusOr<Query> q = b.Build();
  return q.value();  // Shapes above are always valid.
}

std::vector<std::vector<Rect>> MakeWorldData(const WorldConfig& config,
                                             int num_relations) {
  Rng rng(config.seed);
  std::vector<std::vector<Rect>> out(static_cast<size_t>(num_relations));
  for (auto& relation : out) {
    const int n = static_cast<int>(
        rng.UniformInt(0, config.max_rects_per_relation));
    relation.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      double l = rng.Uniform(0, config.max_dim);
      double b = rng.Uniform(0, config.max_dim);
      double x = rng.Uniform(0, config.space_size - l);
      double y = rng.Uniform(b, config.space_size);
      if (config.integer_coords) {
        l = std::floor(l);
        b = std::floor(b);
        x = std::floor(x);
        y = std::ceil(y);
      }
      relation.push_back(Rect::FromXYLB(x, y, l, b));
    }
  }
  return out;
}

}  // namespace mwsj::testing
