#include "testing/world.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "grid/grid_partition.h"
#include "queries/knn.h"

namespace mwsj::testing {

namespace {

Predicate EdgePredicate(const WorldConfig& config, int edge_index) {
  switch (config.mix) {
    case PredicateMix::kOverlapOnly:
      return Predicate::Overlap();
    case PredicateMix::kRangeOnly:
      return Predicate::Range(config.range_d);
    case PredicateMix::kHybrid:
      return (edge_index % 2 == 0) ? Predicate::Overlap()
                                   : Predicate::Range(config.range_d);
  }
  return Predicate::Overlap();
}

}  // namespace

Query MakeWorldQuery(const WorldConfig& config) {
  QueryBuilder b;
  int n = 0;
  std::vector<std::pair<int, int>> edges;
  switch (config.shape) {
    case QueryShape::kChain3:
      n = 3;
      edges = {{0, 1}, {1, 2}};
      break;
    case QueryShape::kChain4:
      n = 4;
      edges = {{0, 1}, {1, 2}, {2, 3}};
      break;
    case QueryShape::kStar4:
      n = 4;
      edges = {{0, 1}, {0, 2}, {0, 3}};
      break;
    case QueryShape::kCycle3:
      n = 3;
      edges = {{0, 1}, {1, 2}, {2, 0}};
      break;
  }
  for (int i = 0; i < n; ++i) b.AddRelation("R" + std::to_string(i + 1));
  for (size_t e = 0; e < edges.size(); ++e) {
    b.AddCondition(edges[e].first, edges[e].second,
                   EdgePredicate(config, static_cast<int>(e)));
  }
  StatusOr<Query> q = b.Build();
  return q.value();  // Shapes above are always valid.
}

std::vector<std::vector<Rect>> MakeWorldData(const WorldConfig& config,
                                             int num_relations) {
  Rng rng(config.seed);
  std::vector<std::vector<Rect>> out(static_cast<size_t>(num_relations));
  for (auto& relation : out) {
    const int n = static_cast<int>(
        rng.UniformInt(0, config.max_rects_per_relation));
    relation.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      double l = rng.Uniform(0, config.max_dim);
      double b = rng.Uniform(0, config.max_dim);
      double x = rng.Uniform(0, config.space_size - l);
      double y = rng.Uniform(b, config.space_size);
      if (config.integer_coords) {
        l = std::floor(l);
        b = std::floor(b);
        x = std::floor(x);
        y = std::ceil(y);
      }
      relation.push_back(Rect::FromXYLB(x, y, l, b));
    }
  }
  return out;
}

std::vector<std::vector<Rect>> MakeKnnWorldData(const KnnWorldConfig& config) {
  Rng rng(config.seed);
  std::vector<std::vector<Rect>> out(2);
  out[0].reserve(static_cast<size_t>(config.num_points));
  for (int i = 0; i < config.num_points; ++i) {
    out[0].push_back(Rect::FromPoint(Point{
        rng.Uniform(0, config.space_size), rng.Uniform(0, config.space_size)}));
  }
  out[1].reserve(static_cast<size_t>(config.num_rects));
  for (int i = 0; i < config.num_rects; ++i) {
    const double l = rng.Uniform(0, config.max_dim);
    const double b = rng.Uniform(0, config.max_dim);
    out[1].push_back(Rect::FromXYLB(rng.Uniform(0, config.space_size - l),
                                    rng.Uniform(b, config.space_size), l, b));
  }
  if (config.with_duplicates && config.num_points > 0 &&
      config.num_rects > 0) {
    out[0].push_back(out[0].front());
    out[0].push_back(out[0].front());
    out[1].push_back(out[1].front());
  }
  return out;
}

std::vector<IdTuple> KnnOracleTuples(const std::vector<Rect>& points,
                                     const std::vector<Rect>& rects, int k) {
  std::vector<IdTuple> out;
  std::vector<std::pair<double, int64_t>> all;
  for (size_t p = 0; p < points.size(); ++p) {
    all.clear();
    all.reserve(rects.size());
    for (size_t r = 0; r < rects.size(); ++r) {
      all.emplace_back(MinDistance(rects[r], points[p]),
                       static_cast<int64_t>(r));
    }
    std::sort(all.begin(), all.end());
    const size_t keep = std::min(all.size(), static_cast<size_t>(k));
    for (size_t rank = 0; rank < keep; ++rank) {
      out.push_back(IdTuple{static_cast<int64_t>(p),
                            static_cast<int64_t>(rank), all[rank].second});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<IdTuple> KnnSingleNodeTuples(const std::vector<Rect>& points,
                                         const std::vector<Rect>& rects, int k,
                                         const Rect& space, int rows,
                                         int cols) {
  std::vector<Point> query_points;
  query_points.reserve(points.size());
  for (const Rect& p : points) query_points.push_back(p.start_point());
  const GridPartition grid = GridPartition::Create(space, rows, cols).value();
  const StatusOr<KnnResult> result = KnnJoin(grid, query_points, rects, k);
  std::vector<IdTuple> out;
  if (!result.ok()) return out;  // Callers compare against the oracle.
  for (size_t p = 0; p < result.value().neighbors.size(); ++p) {
    const std::vector<KnnNeighbor>& nn = result.value().neighbors[p];
    for (size_t rank = 0; rank < nn.size(); ++rank) {
      out.push_back(IdTuple{static_cast<int64_t>(p),
                            static_cast<int64_t>(rank), nn[rank].rect_id});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mwsj::testing
