#ifndef MWSJ_TESTS_TESTING_WORLD_H_
#define MWSJ_TESTS_TESTING_WORLD_H_

#include <vector>

#include "common/random.h"
#include "geometry/rect.h"
#include "query/query.h"

namespace mwsj::testing {

/// Shape of the join graph used by randomized equivalence tests.
enum class QueryShape {
  kChain3,  // R1 - R2 - R3
  kChain4,  // R1 - R2 - R3 - R4
  kStar4,   // R1 at the center of R2, R3, R4
  kCycle3,  // triangle R1 - R2 - R3 - R1
};

/// Kind of predicates on the edges.
enum class PredicateMix {
  kOverlapOnly,
  kRangeOnly,   // all edges Ra(d)
  kHybrid,      // alternating Ov / Ra(d)
};

struct WorldConfig {
  QueryShape shape = QueryShape::kChain3;
  PredicateMix mix = PredicateMix::kOverlapOnly;
  double range_d = 8.0;
  int max_rects_per_relation = 30;
  double space_size = 100.0;
  double max_dim = 35.0;      // Rectangles up to this size (big vs. cells).
  bool integer_coords = false;  // Integer coordinates: boundary-tie stress.
  uint64_t seed = 1;
};

/// Builds the query for a config (always valid).
Query MakeWorldQuery(const WorldConfig& config);

/// Generates one dataset per query relation.
std::vector<std::vector<Rect>> MakeWorldData(const WorldConfig& config,
                                             int num_relations);

}  // namespace mwsj::testing

#endif  // MWSJ_TESTS_TESTING_WORLD_H_
