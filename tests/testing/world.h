#ifndef MWSJ_TESTS_TESTING_WORLD_H_
#define MWSJ_TESTS_TESTING_WORLD_H_

#include <vector>

#include "common/random.h"
#include "geometry/rect.h"
#include "localjoin/brute_force.h"
#include "query/query.h"

namespace mwsj::testing {

/// Shape of the join graph used by randomized equivalence tests.
enum class QueryShape {
  kChain3,  // R1 - R2 - R3
  kChain4,  // R1 - R2 - R3 - R4
  kStar4,   // R1 at the center of R2, R3, R4
  kCycle3,  // triangle R1 - R2 - R3 - R1
};

/// Kind of predicates on the edges.
enum class PredicateMix {
  kOverlapOnly,
  kRangeOnly,   // all edges Ra(d)
  kHybrid,      // alternating Ov / Ra(d)
};

struct WorldConfig {
  QueryShape shape = QueryShape::kChain3;
  PredicateMix mix = PredicateMix::kOverlapOnly;
  double range_d = 8.0;
  int max_rects_per_relation = 30;
  double space_size = 100.0;
  double max_dim = 35.0;      // Rectangles up to this size (big vs. cells).
  bool integer_coords = false;  // Integer coordinates: boundary-tie stress.
  uint64_t seed = 1;
};

/// Builds the query for a config (always valid).
Query MakeWorldQuery(const WorldConfig& config);

/// Generates one dataset per query relation.
std::vector<std::vector<Rect>> MakeWorldData(const WorldConfig& config,
                                             int num_relations);

/// World generator for the distributed-kNN differential suite: relation 0
/// holds degenerate query points, relation 1 data rectangles.
struct KnnWorldConfig {
  int num_points = 120;
  int num_rects = 250;
  double space_size = 100.0;
  double max_dim = 8.0;   // Rectangle edge lengths up to this size.
  /// Appends copies of the first point and the first rectangle, forcing
  /// exact distance ties through the (distance, rect id) tie-break.
  bool with_duplicates = false;
  uint64_t seed = 1;
};

/// {points, rects} datasets for a config.
std::vector<std::vector<Rect>> MakeKnnWorldData(const KnnWorldConfig& config);

/// Scalar brute-force kNN oracle in knn-mr's output encoding:
/// {point_id, rank, rect_id} with ranks assigned by (distance, rect id),
/// sorted by (point, rank). See queries/knn_mr.h.
std::vector<IdTuple> KnnOracleTuples(const std::vector<Rect>& points,
                                     const std::vector<Rect>& rects, int k);

/// The single-node KnnJoin (queries/knn.h) over an explicit grid,
/// re-encoded the same way — the second pin of the differential suite.
std::vector<IdTuple> KnnSingleNodeTuples(const std::vector<Rect>& points,
                                         const std::vector<Rect>& rects, int k,
                                         const Rect& space, int rows, int cols);

}  // namespace mwsj::testing

#endif  // MWSJ_TESTS_TESTING_WORLD_H_
