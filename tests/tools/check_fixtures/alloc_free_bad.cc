// Golden fixture: violates alloc-free-reach. The annotated kernel never
// allocates directly — the growing-container call hides one hop down the
// call graph, which is exactly what the textual per-file rule cannot see
// and mwsj_check's reachability walk must.
#include <vector>

#include "common/effects.h"

namespace fx {

void Accumulate(std::vector<int>* out, int v) {
  out->push_back(v);
}

MWSJ_ALLOC_FREE int ProbeKernel(std::vector<int>* scratch, int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    Accumulate(scratch, i);
    acc += i;
  }
  return acc;
}

}  // namespace fx
