// Golden fixture: clean under alloc-free-reach. The annotated fold only
// does arithmetic, through a helper, on caller-owned storage.
#include <cstddef>

#include "common/effects.h"

namespace fx {

int Step(int v) { return v * 2 + 1; }

MWSJ_ALLOC_FREE int Fold(const int* xs, std::size_t n) {
  int acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += Step(xs[i]);
  }
  return acc;
}

}  // namespace fx
