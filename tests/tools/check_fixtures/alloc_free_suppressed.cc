// Golden fixture: an alloc-free-reach hit silenced by a justified
// multi-line `mwsj-check: allow(...)` comment block — the amortized-scratch
// idiom the real tree uses (rtree.cc, transform.cc).
#include <vector>

#include "common/effects.h"

namespace fx {

MWSJ_ALLOC_FREE void Gather(std::vector<int>* out, int n) {
  for (int i = 0; i < n; ++i) {
    // mwsj-check: allow(alloc-free-reach): caller-owned buffer grows to
    // its high-water size once, then is reused across calls.
    out->push_back(i);
  }
}

}  // namespace fx
