// Golden fixture: violates bad-suppression — the allow names a rule id the
// analyzer does not know, so it must be reported instead of honored.
#include "common/effects.h"

namespace fx {

// mwsj-check: allow(made-up-rule): this id does not exist.
int Identity(int v) { return v; }

}  // namespace fx
