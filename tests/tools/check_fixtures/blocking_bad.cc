// Golden fixture: violates blocking-reach. The annotated kernel calls into
// a declared-MWSJ_BLOCKING member through a typed receiver; there is no
// MWSJ_BLOCKING_OK barrier on the path.
#include "common/effects.h"

namespace fx {

class Channel {
 public:
  MWSJ_BLOCKING void WaitDrained();
};

MWSJ_ALLOC_FREE int DrainAndCount(Channel* ch, int n) {
  ch->WaitDrained();
  return n;
}

}  // namespace fx
