// Golden fixture: clean under blocking-reach. The blocking flush is only
// reachable through an MWSJ_BLOCKING_OK barrier (the sanctioned commit
// scope), so the traversal stops there instead of flagging it.
#include "common/effects.h"

namespace fx {

class Stage {
 public:
  MWSJ_BLOCKING_OK void Commit();
  MWSJ_BLOCKING void Flush();
};

void Stage::Commit() { Flush(); }

MWSJ_DETERMINISTIC void Finish(Stage* stage) { stage->Commit(); }

}  // namespace fx
