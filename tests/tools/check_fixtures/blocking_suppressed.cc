// Golden fixture: a blocking-reach hit silenced by a justified allow on the
// comment block above the call site.
#include "common/effects.h"

namespace fx {

class Pool {
 public:
  MWSJ_BLOCKING void Join();
};

MWSJ_ALLOC_FREE void Tick(Pool* pool) {
  // mwsj-check: allow(blocking-reach): the epoch tick runs on the driver
  // thread at most once per job; the join is bounded by construction.
  pool->Join();
}

}  // namespace fx
