// Golden fixture: violates emit-determinism. The annotated root never
// touches an unordered container itself — the hash-order iteration sits in
// the helper it calls, so only the reachability walk can connect them.
#include <unordered_map>

#include "common/effects.h"

namespace fx {

struct Histogram {
  std::unordered_map<long, long> counts;
};

void FlushCounts(const std::unordered_map<long, long>& counts,
                 void (*emit)(long, long)) {
  for (const auto& kv : counts) {
    emit(kv.first, kv.second);
  }
}

MWSJ_DETERMINISTIC void EmitHistogram(const Histogram& h,
                                      void (*emit)(long, long)) {
  FlushCounts(h.counts, emit);
}

}  // namespace fx
