// Golden fixture: clean under emit-determinism. Ordered-map iteration is a
// total, platform-independent order, so feeding it to the emit stream is
// exactly what the annotation promises.
#include <map>

#include "common/effects.h"

namespace fx {

MWSJ_DETERMINISTIC void EmitSorted(const std::map<long, long>& counts,
                                   void (*emit)(long, long)) {
  for (const auto& kv : counts) {
    emit(kv.first, kv.second);
  }
}

}  // namespace fx
