// Golden fixture: an emit-determinism hit silenced by a justified allow in
// the comment block directly above the flagged line.
#include <unordered_map>

#include "common/effects.h"

namespace fx {

// mwsj-check: allow(emit-determinism): the tally is emitted as one
// aggregate count; unordered iteration order never reaches the stream.
MWSJ_DETERMINISTIC void EmitTally(const std::unordered_map<long, long>& t,
                                  void (*emit)(long, long)) {
  emit(0, static_cast<long>(t.size()));
}

}  // namespace fx
