// Golden fixture: violates lock-order. Credit acquires accounts_mu_ then
// audit_mu_; Audit acquires them in the reverse order — a two-lock cycle in
// the acquisition graph, the classic AB/BA deadlock shape.
#include "common/mutex.h"

namespace fx {

class Ledger {
 public:
  void Credit() {
    MutexLock accounts(&accounts_mu_);
    MutexLock audit(&audit_mu_);
  }
  void Audit() {
    MutexLock audit(&audit_mu_);
    MutexLock accounts(&accounts_mu_);
  }

 private:
  Mutex accounts_mu_;
  Mutex audit_mu_;
};

}  // namespace fx
