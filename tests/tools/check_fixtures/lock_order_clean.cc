// Golden fixture: clean under lock-order. Both paths acquire head_mu_
// before tail_mu_ — including the path where tail_mu_ is taken by a callee
// while head_mu_ is held, which exercises the transitive acquires() set.
#include "common/mutex.h"

namespace fx {

class Journal {
 public:
  void Append() {
    MutexLock head(&head_mu_);
    MutexLock tail(&tail_mu_);
  }
  void Rotate() {
    MutexLock head(&head_mu_);
    Seal();
  }
  void Seal() { MutexLock tail(&tail_mu_); }

 private:
  Mutex head_mu_;
  Mutex tail_mu_;
};

}  // namespace fx
