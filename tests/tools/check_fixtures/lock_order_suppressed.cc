// Golden fixture: a lock-order cycle silenced by a justified allow at the
// edge the analyzer reports (the first acquisition-while-holding site).
#include "common/mutex.h"

namespace fx {

class Registry {
 public:
  void Bind() {
    MutexLock names(&names_mu_);
    // mwsj-check: allow(lock-order): the reverse order in Unbind is dead
    // code behind a migration flag and is tracked for removal.
    MutexLock ids(&ids_mu_);
  }
  void Unbind() {
    MutexLock ids(&ids_mu_);
    MutexLock names(&names_mu_);
  }

 private:
  Mutex names_mu_;
  Mutex ids_mu_;
};

}  // namespace fx
