// Golden fixture: std::mt19937 is allowed inside src/common — that is
// where the seeded PRNG and its cross-checks live.
#include <random>

namespace mwsj {

unsigned CrossCheckDraw() {
  std::mt19937 reference(123);
  return reference();
}

}  // namespace mwsj
