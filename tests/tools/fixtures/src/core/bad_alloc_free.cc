// mwsj-lint: alloc-free
// Golden fixture: violates exactly alloc-in-alloc-free.

namespace mwsj {

int* MakeScratch(int n) {
  return new int[n];
}

}  // namespace mwsj
