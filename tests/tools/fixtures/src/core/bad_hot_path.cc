// mwsj-lint: hot-path
// Golden fixture: violates exactly hot-path-std-function.
#include <functional>

namespace mwsj {

void ForEachCandidate(const std::function<void(int)>& visit) {
  for (int i = 0; i < 8; ++i) visit(i);
}

}  // namespace mwsj
