// Golden fixture: violates exactly rng-outside-common (line 6).
#include <random>

namespace mwsj {

int UnseededDraw() {
  std::mt19937 gen(42);
  return static_cast<int>(gen());
}

}  // namespace mwsj
