// mwsj-lint: spill-budgeted
// Fixture: amortized-doubling growth with no reserve() in a file that
// claims the bounded-memory spill contract must be flagged.
#include <cstdint>
#include <vector>

namespace mwsj {

std::vector<uint8_t> StageRun(const uint8_t* data, size_t n) {
  std::vector<uint8_t> staged;
  staged.reserve(n);
  for (size_t i = 0; i < n; ++i) staged.push_back(data[i]);

  std::vector<uint8_t> unbounded;
  for (size_t i = 0; i < n; ++i) unbounded.push_back(data[i]);  // Flagged.
  return unbounded.empty() ? staged : unbounded;
}

}  // namespace mwsj
