// Golden fixture: violates exactly stdout-in-library.
#include <iostream>

namespace mwsj {

void ReportProgress(int done) {
  std::cout << "done: " << done << "\n";
}

}  // namespace mwsj
