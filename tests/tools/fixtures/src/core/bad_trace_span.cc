// Golden fixture: violates exactly trace-span-temporary.

namespace mwsj {

class Tracer;
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* category);
};

void TraceOneBatch(Tracer* tracer) {
  TraceSpan(tracer, "batch", "stage");  // Dies immediately: zero-length span.
}

}  // namespace mwsj
