// Golden fixture: violates exactly unordered-emit.
#include <cstdint>
#include <unordered_map>

namespace mwsj {

struct Emitter {
  void Emit(int64_t key, int64_t value);
};

void FlushCounts(const std::unordered_map<int64_t, int64_t>& counts,
                 Emitter& emitter) {
  for (const auto& [key, value] : counts) {
    emitter.Emit(key, value);
  }
}

}  // namespace mwsj
