// mwsj-lint: hot-path
// mwsj-lint: alloc-free
// Golden fixture: violates no rule. Sorted emission from an unordered
// container, a named TraceSpan, no std::function, no naked allocation —
// and rule keywords inside comments and string literals must not trip the
// matchers: std::cout, printf(, std::mt19937, new int[3].

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mwsj {

struct Emitter {
  void Emit(int64_t key, int64_t value);
};

class Tracer;
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* category);
};

const char* RuleNamesInStrings() {
  return "std::cout printf( std::mt19937 rand( new ";
}

// Deterministic emit: keys are sorted before the output loop.
void FlushCountsSorted(const std::unordered_map<int64_t, int64_t>& counts,
                       Emitter& emitter, Tracer* tracer) {
  TraceSpan flush_span(tracer, "flush", "stage");
  std::vector<int64_t> keys;
  keys.reserve(counts.size());
  for (const auto& [key, value] : counts) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (int64_t key : keys) emitter.Emit(key, counts.at(key));
}

}  // namespace mwsj
