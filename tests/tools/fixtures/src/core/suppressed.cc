// mwsj-lint: hot-path
// Golden fixture: every violation carries an allow() suppression, so the
// lint must exit 0. Exercises same-line and previous-line placement and
// the comma-separated form.
#include <functional>
#include <iostream>
#include <random>

namespace mwsj {

// mwsj-lint: allow(rng-outside-common)
std::mt19937 g_generator(7);

void Log(int v) {
  std::cout << v << "\n";  // mwsj-lint: allow(stdout-in-library)
}

// mwsj-lint: allow(hot-path-std-function, stdout-in-library)
void Visit(const std::function<void(int)>& fn) { fn(0); }

}  // namespace mwsj
