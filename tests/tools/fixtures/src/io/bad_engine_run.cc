// Golden fixture: drives MapReduceJob::Run directly from outside the
// scheduler core (src/io is not src/core, src/queries, or src/mapreduce),
// bypassing admission control and per-job attribution.

#include <span>
#include <vector>

#include "mapreduce/engine.h"

namespace mwsj {

void IngestAndJoin(const std::vector<int>& input) {
  MapReduceJob<int, int, int, int> job("rogue_ingest", 4);
  std::vector<int> output;
  job.Run(std::span<const int>(input), &output);  // BAD: bypasses scheduler.
}

}  // namespace mwsj
