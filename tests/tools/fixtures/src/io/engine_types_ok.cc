// Golden fixture: including mapreduce/engine.h outside the scheduler core
// is fine as long as nothing calls MapReduceJob::Run directly — jobs are
// handed to JobScheduler::Submit instead. Run() calls on unrelated types
// scoped to src/core stay exempt (see the bad_engine_run fixture for the
// violation).

#include "mapreduce/engine.h"

namespace mwsj {

int CountReducers(const MapReduceJob<int, int, int, int>& job) {
  return job.num_reducers();
}

}  // namespace mwsj
