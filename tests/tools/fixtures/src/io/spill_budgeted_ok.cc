// mwsj-lint: spill-budgeted
// Fixture: in a spill-budgeted file, growth behind a reserve() and growth
// explicitly justified with allow(spill-unbounded) are both clean; files
// without the marker are exempt from the rule entirely.
#include <cstdint>
#include <vector>

namespace mwsj {

std::vector<uint8_t> BoundedStage(const uint8_t* data, size_t n) {
  std::vector<uint8_t> staged;
  staged.reserve(n);
  for (size_t i = 0; i < n; ++i) staged.push_back(data[i]);

  std::vector<uint8_t> headers;
  // Bounded by construction: at most one header per fixed-size block.
  // mwsj-lint: allow(spill-unbounded)
  headers.push_back(static_cast<uint8_t>(n & 0xff));
  return headers.empty() ? staged : headers;
}

}  // namespace mwsj
