// mwsj-lint: hot-path
// mwsj-lint: alloc-free
// Golden fixture: a query-layer reducer kernel in the knn_mr.cc idiom must
// pass the hot-path and alloc-free rules as written — scratch buffers
// reused across points, a generic callback parameter instead of
// std::function, partial_sort for the local top-k, no naked allocation.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mwsj {

struct KnnCandidate {
  int64_t point_id = 0;
  int64_t rect_id = 0;
  double distance = 0;
};

// (distance, rect id): the total order that makes top-k unique.
inline bool CandidateLess(const KnnCandidate& a, const KnnCandidate& b) {
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.rect_id < b.rect_id;
}

// Emits each point's k smallest candidates through a statically dispatched
// callback; `scratch` is caller-owned and reused across invocations.
template <typename Emit>
void EmitLocalTopK(std::vector<KnnCandidate>* scratch, int k, Emit&& emit) {
  std::vector<KnnCandidate>& candidates = *scratch;
  if (static_cast<int>(candidates.size()) > k) {
    std::partial_sort(candidates.begin(), candidates.begin() + k,
                      candidates.end(), CandidateLess);
    candidates.resize(static_cast<size_t>(k));
  } else {
    std::sort(candidates.begin(), candidates.end(), CandidateLess);
  }
  for (const KnnCandidate& c : candidates) emit(c);
}

}  // namespace mwsj
