// Golden fixture: stdout is the CLI contract — tools/ is exempt from
// stdout-in-library.
#include <cstdio>
#include <iostream>

int main() {
  std::cout << "report\n";
  printf("table row\n");
  return 0;
}
