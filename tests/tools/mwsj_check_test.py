#!/usr/bin/env python3
"""Tests for tools/mwsj_check.py against the golden check fixtures.

Run via ctest (tools_mwsj_check_test) or directly:
    python3 tests/tools/mwsj_check_test.py

The fixtures under tests/tools/check_fixtures/ are analyzer inputs, never
compiled by the build. Each rule has a violating, a clean, and a suppressed
fixture. The suite always runs the textual frontend (available everywhere);
when the python clang bindings are importable it re-runs the bad/clean
fixtures under the libclang frontend against a generated compilation
database and asserts the two frontends agree.
"""

import json
import pathlib
import re
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
CHECK = REPO_ROOT / "tools" / "mwsj_check.py"
FIXTURES = REPO_ROOT / "tests" / "tools" / "check_fixtures"
BASELINE = REPO_ROOT / "tools" / "mwsj_check_baseline.txt"

DIAG_RE = re.compile(
    r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z0-9\-]+)\] ")

# fixture (relative to the fixture root) -> the one rule it violates.
BAD_FIXTURES = {
    "alloc_free_bad.cc": "alloc-free-reach",
    "emit_determinism_bad.cc": "emit-determinism",
    "blocking_bad.cc": "blocking-reach",
    "lock_order_bad.cc": "lock-order",
    "bad_suppression.cc": "bad-suppression",
}

CLEAN_FIXTURES = [
    "alloc_free_clean.cc",
    "alloc_free_suppressed.cc",
    "emit_determinism_clean.cc",
    "emit_determinism_suppressed.cc",
    "blocking_clean.cc",
    "blocking_suppressed.cc",
    "lock_order_clean.cc",
    "lock_order_suppressed.cc",
]


def run_check(*args):
    return subprocess.run(
        [sys.executable, str(CHECK), "--frontend=textual", *args],
        capture_output=True, text=True, cwd=REPO_ROOT, check=False)


def parse_diags(stdout):
    diags = []
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((m.group("path"), int(m.group("line")),
                          m.group("rule")))
    return diags


def have_libclang():
    probe = ("import tools.mwsj_check as mc, sys; "
             "sys.exit(0 if mc.load_cindex() is not None else 1)")
    return subprocess.run([sys.executable, "-c", probe], cwd=REPO_ROOT,
                          capture_output=True).returncode == 0


class MwsjCheckFixtureTest(unittest.TestCase):
    def check_fixture(self, rel, *extra):
        return run_check("--root", str(FIXTURES), *extra, rel)

    def test_each_bad_fixture_violates_exactly_its_rule(self):
        for rel, rule in BAD_FIXTURES.items():
            with self.subTest(fixture=rel):
                proc = self.check_fixture(rel)
                self.assertEqual(proc.returncode, 1,
                                 f"{rel}: expected exit 1, got "
                                 f"{proc.returncode}\n{proc.stdout}"
                                 f"{proc.stderr}")
                diags = parse_diags(proc.stdout)
                self.assertEqual(len(diags), 1,
                                 f"{rel}: expected exactly one diagnostic, "
                                 f"got: {proc.stdout}")
                path, line, got_rule = diags[0]
                self.assertEqual(got_rule, rule, f"{rel}: wrong rule id")
                self.assertTrue(path.endswith(rel),
                                f"{rel}: diagnostic names wrong file {path}")
                self.assertGreater(line, 0)

    def test_clean_and_suppressed_fixtures_pass(self):
        for rel in CLEAN_FIXTURES:
            with self.subTest(fixture=rel):
                proc = self.check_fixture(rel)
                self.assertEqual(proc.returncode, 0,
                                 f"{rel}: expected exit 0\n{proc.stdout}"
                                 f"{proc.stderr}")
                self.assertEqual(parse_diags(proc.stdout), [],
                                 f"{rel}: unexpected diagnostics: "
                                 f"{proc.stdout}")

    def test_disabling_a_rule_silences_exactly_its_fixture(self):
        # Proves each bad fixture's diagnostic comes from its rule alone —
        # and pins that the rule is what keeps the fixture failing: if the
        # rule stopped firing, test_each_bad_fixture... would fail too.
        for rel, rule in BAD_FIXTURES.items():
            if rule == "bad-suppression":
                continue  # not disableable; it guards the allow grammar
            with self.subTest(fixture=rel):
                proc = self.check_fixture(rel, "--disable", rule)
                self.assertEqual(proc.returncode, 0,
                                 f"{rel}: still failing with {rule} "
                                 f"disabled:\n{proc.stdout}{proc.stderr}")
                self.assertEqual(parse_diags(proc.stdout), [])

    def test_unknown_disable_rule_is_a_usage_error(self):
        proc = self.check_fixture("alloc_free_clean.cc",
                                  "--disable", "no-such-rule")
        self.assertEqual(proc.returncode, 2)

    def test_baseline_suppresses_justified_findings(self):
        with tempfile.TemporaryDirectory() as td:
            bl = pathlib.Path(td) / "baseline.txt"
            bl.write_text(
                "# fixture baseline\n"
                "alloc-free-reach|alloc_free_bad.cc|Accumulate|"
                "fixture: growth is bounded by the test harness\n")
            proc = self.check_fixture("alloc_free_bad.cc",
                                      "--baseline", str(bl))
            self.assertEqual(proc.returncode, 0,
                             f"baselined finding still reported:\n"
                             f"{proc.stdout}{proc.stderr}")

    def test_baseline_wildcard_function_matches(self):
        with tempfile.TemporaryDirectory() as td:
            bl = pathlib.Path(td) / "baseline.txt"
            bl.write_text("emit-determinism|emit_determinism_bad.cc|*|"
                          "fixture: wildcard entry\n")
            proc = self.check_fixture("emit_determinism_bad.cc",
                                      "--baseline", str(bl))
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_stale_baseline_entry_fails_the_run(self):
        with tempfile.TemporaryDirectory() as td:
            bl = pathlib.Path(td) / "baseline.txt"
            bl.write_text("lock-order|no_such_file.cc|*|stale entry\n")
            proc = self.check_fixture("alloc_free_clean.cc",
                                      "--baseline", str(bl))
            self.assertEqual(proc.returncode, 1,
                             "stale baseline entry must fail the run")
            self.assertIn("stale-baseline", proc.stdout)

    def test_baseline_entry_without_justification_is_rejected(self):
        with tempfile.TemporaryDirectory() as td:
            bl = pathlib.Path(td) / "baseline.txt"
            bl.write_text("alloc-free-reach|alloc_free_bad.cc|Accumulate|\n")
            proc = self.check_fixture("alloc_free_bad.cc",
                                      "--baseline", str(bl))
            self.assertNotEqual(proc.returncode, 0)
            self.assertIn("justification", proc.stdout + proc.stderr)

    def test_report_file_is_written(self):
        with tempfile.TemporaryDirectory() as td:
            rp = pathlib.Path(td) / "report.txt"
            proc = self.check_fixture("lock_order_bad.cc",
                                      "--report", str(rp))
            self.assertEqual(proc.returncode, 1)
            self.assertTrue(rp.exists())
            self.assertIn("lock-order", rp.read_text())

    def test_real_tree_is_clean_under_baseline(self):
        # The same gate CI applies (and the mwsj_check_tree ctest): src/
        # analyzes clean modulo the justified baseline.
        proc = run_check("--baseline", str(BASELINE), "src")
        self.assertEqual(proc.returncode, 0,
                         f"src/ has unbaselined findings:\n{proc.stdout}"
                         f"{proc.stderr}")

    def test_list_rules_names_all_four_graph_rules(self):
        proc = run_check("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in ("alloc-free-reach", "emit-determinism",
                     "blocking-reach", "lock-order"):
            self.assertIn(rule, proc.stdout)


@unittest.skipUnless(have_libclang(),
                     "python clang bindings / libclang unavailable")
class MwsjCheckLibclangParityTest(unittest.TestCase):
    """The libclang frontend must agree with the textual one on fixtures."""

    @classmethod
    def setUpClass(cls):
        cls.tmp = tempfile.TemporaryDirectory()
        compdb = []
        for cc in sorted(FIXTURES.glob("*.cc")):
            compdb.append({
                "directory": str(FIXTURES),
                "file": str(cc),
                "command": (f"clang++ -std=c++20 -I{REPO_ROOT / 'src'} "
                            f"-c {cc}"),
            })
        cls.compdb_path = pathlib.Path(cls.tmp.name)
        (cls.compdb_path / "compile_commands.json").write_text(
            json.dumps(compdb))

    @classmethod
    def tearDownClass(cls):
        cls.tmp.cleanup()

    def check_libclang(self, rel):
        return subprocess.run(
            [sys.executable, str(CHECK), "--frontend=libclang",
             "--compdb", str(self.compdb_path),
             "--root", str(FIXTURES), rel],
            capture_output=True, text=True, cwd=REPO_ROOT, check=False)

    def test_frontends_agree_on_fixtures(self):
        for rel, rule in BAD_FIXTURES.items():
            with self.subTest(fixture=rel):
                proc = self.check_libclang(rel)
                self.assertEqual(proc.returncode, 1,
                                 f"{rel}: libclang frontend disagrees:\n"
                                 f"{proc.stdout}{proc.stderr}")
                rules = {r for _p, _l, r in parse_diags(proc.stdout)}
                self.assertEqual(rules, {rule}, f"{rel}: {proc.stdout}")
        for rel in CLEAN_FIXTURES:
            with self.subTest(fixture=rel):
                proc = self.check_libclang(rel)
                self.assertEqual(proc.returncode, 0,
                                 f"{rel}: libclang frontend disagrees:\n"
                                 f"{proc.stdout}{proc.stderr}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
