#!/usr/bin/env python3
"""Tests for tools/mwsj_lint.py against the golden fixtures.

Run via ctest (tools_mwsj_lint_test) or directly:
    python3 tests/tools/mwsj_lint_test.py
"""

import pathlib
import re
import subprocess
import sys
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
LINT = REPO_ROOT / "tools" / "mwsj_lint.py"
FIXTURES = REPO_ROOT / "tests" / "tools" / "fixtures"

DIAG_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z0-9\-]+)\] ")

# fixture file (relative to the fixture root) -> the one rule it violates.
BAD_FIXTURES = {
    "src/core/bad_rng.cc": "rng-outside-common",
    "src/core/bad_stdout.cc": "stdout-in-library",
    "src/core/bad_unordered_emit.cc": "unordered-emit",
    "src/core/bad_hot_path.cc": "hot-path-std-function",
    "src/core/bad_trace_span.cc": "trace-span-temporary",
    "src/core/bad_alloc_free.cc": "alloc-in-alloc-free",
    "src/core/bad_spill_unbounded.cc": "spill-unbounded",
    "src/io/bad_engine_run.cc": "engine-run-outside-scheduler",
}

CLEAN_FIXTURES = [
    "src/core/clean.cc",
    "src/core/suppressed.cc",
    "src/common/rng_ok.cc",
    "src/io/engine_types_ok.cc",
    "src/io/spill_budgeted_ok.cc",
    "src/queries/knn_mr_ok.cc",
    "tools/stdout_ok.cc",
]


def run_lint(*args):
    return subprocess.run(
        [sys.executable, str(LINT), *args],
        capture_output=True, text=True, cwd=REPO_ROOT, check=False)


def parse_diags(stdout):
    diags = []
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if m:
            diags.append((m.group("path"), int(m.group("line")),
                          m.group("rule")))
    return diags


class MwsjLintFixtureTest(unittest.TestCase):
    def lint_fixture(self, rel):
        return run_lint("--root", str(FIXTURES), str(FIXTURES / rel))

    def test_each_bad_fixture_violates_exactly_its_rule(self):
        for rel, rule in BAD_FIXTURES.items():
            with self.subTest(fixture=rel):
                proc = self.lint_fixture(rel)
                self.assertEqual(proc.returncode, 1,
                                 f"{rel}: expected exit 1, got "
                                 f"{proc.returncode}\n{proc.stdout}"
                                 f"{proc.stderr}")
                diags = parse_diags(proc.stdout)
                self.assertEqual(len(diags), 1,
                                 f"{rel}: expected exactly one diagnostic, "
                                 f"got: {proc.stdout}")
                path, line, got_rule = diags[0]
                self.assertEqual(got_rule, rule, f"{rel}: wrong rule id")
                self.assertTrue(path.endswith(rel),
                                f"{rel}: diagnostic names wrong file {path}")
                self.assertGreater(line, 0)

    def test_clean_and_suppressed_fixtures_pass(self):
        for rel in CLEAN_FIXTURES:
            with self.subTest(fixture=rel):
                proc = self.lint_fixture(rel)
                self.assertEqual(
                    proc.returncode, 0,
                    f"{rel}: expected clean, got:\n{proc.stdout}")
                self.assertEqual(parse_diags(proc.stdout), [])

    def test_whole_fixture_tree_reports_every_bad_rule(self):
        proc = run_lint("--root", str(FIXTURES), str(FIXTURES))
        self.assertEqual(proc.returncode, 1)
        diags = parse_diags(proc.stdout)
        self.assertEqual(sorted({d[2] for d in diags}),
                         sorted(set(BAD_FIXTURES.values())),
                         "tree lint must flag each rule exactly via its "
                         f"fixture; got:\n{proc.stdout}")
        self.assertEqual(len(diags), len(BAD_FIXTURES),
                         "each bad fixture must contribute exactly one "
                         f"diagnostic; got:\n{proc.stdout}")

    def test_suppression_removed_reveals_violation(self):
        # The suppressed fixture really contains violations: linting a copy
        # with the allow() comments stripped must fail. Guards against the
        # suppression syntax silently matching everything.
        src = (FIXTURES / "src/core/suppressed.cc").read_text()
        stripped = re.sub(r"//\s*mwsj-lint:\s*allow\([^)]*\)", "", src)
        import tempfile
        with tempfile.TemporaryDirectory() as tmp:
            target = pathlib.Path(tmp) / "src" / "core" / "unsuppressed.cc"
            target.parent.mkdir(parents=True)
            target.write_text(stripped)
            proc = run_lint("--root", tmp, str(target))
        self.assertEqual(proc.returncode, 1)
        rules = {d[2] for d in parse_diags(proc.stdout)}
        self.assertEqual(rules, {"rng-outside-common", "stdout-in-library",
                                 "hot-path-std-function"})

    def test_list_rules_names_every_rule(self):
        proc = run_lint("--list-rules")
        self.assertEqual(proc.returncode, 0)
        for rule in set(BAD_FIXTURES.values()):
            self.assertIn(rule, proc.stdout)

    def test_missing_path_is_usage_error(self):
        proc = run_lint("no/such/dir")
        self.assertEqual(proc.returncode, 2)

    def test_real_tree_is_clean(self):
        # The gating invariant: src/ and tools/ must lint clean. Mirrors the
        # mwsj_lint_tree ctest and the CI static-analysis job.
        proc = run_lint("src", "tools")
        self.assertEqual(proc.returncode, 0,
                         f"src/ or tools/ has lint violations:\n"
                         f"{proc.stdout}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
