#!/usr/bin/env python3
"""mwsj_check: call-graph-aware invariant analyzer for the mwsj tree.

Where tools/mwsj_lint.py matches single lines against regexes, this tool
builds a whole-program call graph over the effect annotations declared in
src/common/effects.h and propagates four invariants across it (rule table:
tools/mwsj_check_rules.md; architecture: DESIGN.md section 2.15):

  alloc-free-reach   An MWSJ_ALLOC_FREE function must not transitively
                     reach operator new / malloc / make_unique / a
                     growing-container call. Function-granular successor
                     of the PR-3 allocs_per_probe == 0 kernel contract.
  emit-determinism   An MWSJ_DETERMINISTIC function must not transitively
                     iterate an unordered container, sort by raw pointer
                     value, or touch RNG outside src/common/ — the static
                     form of the PR-1 plane-sweep tie-break bug class.
  blocking-reach     An MWSJ_BLOCKING function (Dfs I/O, CondVar waits,
                     pool joins) must be unreachable from MWSJ_ALLOC_FREE
                     / MWSJ_DETERMINISTIC functions except through an
                     MWSJ_BLOCKING_OK barrier (spill-flush entry points).
  lock-order         The Mutex acquisition graph — direct MutexLock
                     nesting plus locks acquired by callees while a lock
                     is held — must be acyclic. Lock identity is
                     Class::member (instance-insensitive), so two
                     instances of the same member are one node.

Frontends (--frontend=auto|libclang|textual):

  libclang  parses every TU named by compile_commands.json (--compdb) and
            uses AST cursors for function boundaries, effect annotations
            ([[clang::annotate("mwsj::*")]]) and the Mutex field registry.
  textual   a length-preserving comment/string stripper plus a scope
            scanner that reads the MWSJ_* macro tokens directly; used
            where python3-clang is unavailable (and for annotation-only
            fixture trees with no compilation database).

Both frontends emit the same intermediate representation, and feature /
call-site extraction always runs over the function's *source text* with
shared matchers, so the two frontends agree on the golden fixtures; the
CI job additionally runs the fixture suite under whichever frontend it
resolved before gating the tree.

Suppressions: `// mwsj-check: allow(rule[,rule]): justification` on the
finding line or the line above. A missing or empty justification is
itself a finding (bad-suppression) that cannot be suppressed. Baseline
entries (--baseline FILE) are `rule|path|function|justification` lines;
entries that no longer match any finding are reported as stale and fail
the run, keeping the baseline exact.

Exit codes: 0 clean, 1 findings, 2 usage or frontend error.
"""

from __future__ import annotations

import argparse
import bisect
import glob as globmod
import os
import pathlib
import re
import sys
from dataclasses import dataclass, field

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

RULES = {
    "alloc-free-reach":
        "MWSJ_ALLOC_FREE functions may not transitively reach operator "
        "new/malloc/make_unique or growing-container calls",
    "emit-determinism":
        "MWSJ_DETERMINISTIC functions may not transitively iterate "
        "unordered containers, sort by pointer value, or use RNG outside "
        "src/common/",
    "blocking-reach":
        "MWSJ_BLOCKING functions must be unreachable from MWSJ_ALLOC_FREE/"
        "MWSJ_DETERMINISTIC functions except via MWSJ_BLOCKING_OK",
    "lock-order":
        "the MutexLock acquisition graph (including locks taken by "
        "callees) must be acyclic",
    "bad-suppression":
        "every `mwsj-check: allow(...)` must name known rules and carry "
        "a non-empty justification",
}

ANNOTATION_TOKENS = {
    "MWSJ_ALLOC_FREE": "alloc_free",
    "MWSJ_DETERMINISTIC": "deterministic",
    "MWSJ_BLOCKING_OK": "blocking_ok",
    "MWSJ_BLOCKING": "blocking",
}
# libclang spells them through the annotate attribute payload.
ANNOTATE_PAYLOADS = {
    "mwsj::alloc_free": "alloc_free",
    "mwsj::deterministic": "deterministic",
    "mwsj::blocking_ok": "blocking_ok",
    "mwsj::blocking": "blocking",
}

ALLOW_RE = re.compile(
    r"//\s*mwsj-check:\s*allow\(([a-z0-9\-, \t]*)\)[ \t]*:?[ \t]*(.*)")

# ---------------------------------------------------------------------------
# Shared text utilities
# ---------------------------------------------------------------------------


def strip_comments_and_strings(src: str) -> str:
    """Blanks comments, string and char literals with spaces.

    Length-preserving (newlines kept), so offsets and line numbers in the
    stripped text match the original byte-for-byte.
    """
    out = []
    i, n = 0, len(src)
    NORMAL, LINE, BLOCK, STR, CHR, RAW = range(6)
    state = NORMAL
    raw_delim = ""
    while i < n:
        c = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                j = i - 1
                if j >= 0 and src[j] == "R" and (j == 0 or
                                                 not src[j - 1].isalnum()):
                    m = re.match(r'"([^\s()\\]{0,16})\(', src[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = RAW
                        out.append('"')
                        i += 1
                        continue
                state = STR
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHR
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == LINE:
            if c == "\n":
                state = NORMAL
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == BLOCK:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == STR:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == CHR:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                out.append("'")
            else:
                out.append(" ")
            i += 1
        else:  # RAW
            if src.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = NORMAL
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


class LineMap:
    """offset -> 1-based line number over a fixed text."""

    def __init__(self, text: str):
        self.starts = [0]
        for i, c in enumerate(text):
            if c == "\n":
                self.starts.append(i + 1)

    def line(self, offset: int) -> int:
        return bisect.bisect_right(self.starts, offset)


# ---------------------------------------------------------------------------
# Intermediate representation
# ---------------------------------------------------------------------------


@dataclass
class FunctionInfo:
    qual: str          # e.g. "RTree::Query" (namespace-insensitive)
    simple: str        # "Query"
    cls: str           # "RTree" or "" for free functions
    rel: str           # repo-relative path of the defining file
    line: int          # line of the definition
    offset: int        # offset of the definition head in the stripped file
    text: str          # stripped source of head + body
    annotations: set = field(default_factory=set)
    # Derived by the analyzer:
    calls: list = field(default_factory=list)      # (name, line, offset)
    alloc_sites: list = field(default_factory=list)        # (line, what)
    nondet_sites: list = field(default_factory=list)       # (line, what)
    blocking_sites: list = field(default_factory=list)     # (line, what)
    lock_events: list = field(default_factory=list)        # see scan_locks


@dataclass
class FileInfo:
    rel: str
    raw: str
    code: str          # stripped
    linemap: LineMap
    allows: dict = field(default_factory=dict)   # line -> set(rules)


@dataclass
class ParseResult:
    functions: list = field(default_factory=list)
    files: dict = field(default_factory=dict)            # rel -> FileInfo
    fields: list = field(default_factory=list)   # (class, member, type)
    # Annotations harvested from declarations without bodies:
    # (cls, simple) -> (set of effects, rel, line of first such decl)
    decl_annotations: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)         # bad-suppression


def scan_allows(fi: FileInfo, findings: list) -> None:
    for m in ALLOW_RE.finditer(fi.raw):
        line = fi.raw.count("\n", 0, m.start()) + 1
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        just = m.group(2).strip()
        bad = [r for r in rules if r not in RULES or r == "bad-suppression"]
        if not rules or bad or not just:
            what = ("unknown rule(s) " + ", ".join(sorted(bad))) if bad else (
                "no rule named" if not rules else "missing justification")
            findings.append(Finding(fi.rel, line, "bad-suppression",
                                    f"suppression is invalid: {what}", ""))
            continue
        fi.allows.setdefault(line, set()).update(rules)


# ---------------------------------------------------------------------------
# Textual frontend
# ---------------------------------------------------------------------------

HEAD_KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "try", "catch", "return",
    "new", "delete", "sizeof", "case", "default", "throw", "alignas",
    "static_assert", "decltype", "requires", "asm", "defined",
}

NAME_BEFORE_PAREN_RE = re.compile(
    r"((?:operator\s*(?:\(\)|\[\]|[^\s\w(]{1,3}))|"
    r"(?:~?[A-Za-z_]\w*(?:\s*::\s*~?[A-Za-z_]\w*)*))\s*$")

CLASS_HEAD_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*"
                           r"(?:<[^;{]*>)?\s*(?:final\s*)?(?::[^;{]*)?$")
NAMESPACE_HEAD_RE = re.compile(r"\bnamespace\s*([A-Za-z_]\w*)?\s*$")


def find_param_paren(head: str):
    """Offset of the first '(' at angle/square-bracket depth 0, or None."""
    angle = square = 0
    i = 0
    n = len(head)
    while i < n:
        c = head[i]
        if c == "<":
            angle += 1
        elif c == ">":
            if angle > 0:
                angle -= 1
        elif c == "[":
            square += 1
        elif c == "]":
            if square > 0:
                square -= 1
        elif c == "(" and angle == 0 and square == 0:
            return i
        elif c in ";{}":
            return None
        i += 1
    return None


def match_brace(code: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def head_annotations(head: str) -> set:
    out = set()
    for token, effect in ANNOTATION_TOKENS.items():
        if re.search(rf"\b{token}\b", head):
            out.add(effect)
    return out


class TextualFrontend:
    """Scope scanner over stripped source. One file at a time."""

    def __init__(self, result: ParseResult):
        self.result = result

    def parse_file(self, rel: str, raw: str) -> None:
        code = strip_comments_and_strings(raw)
        fi = FileInfo(rel=rel, raw=raw, code=code, linemap=LineMap(code))
        self.result.files[rel] = fi
        scan_allows(fi, self.result.findings)
        class_extents = []  # (name, start, end)
        func_extents = []
        self._scan_region(fi, code, 0, len(code), [], class_extents,
                          func_extents)
        self._scan_fields(fi, class_extents, func_extents)

    def _scan_region(self, fi, code, start, end, class_stack,
                     class_extents, func_extents):
        i = start
        head_start = start
        while i < end:
            c = code[i]
            if c in ";}":
                # Harvest annotations from bodiless declarations.
                if c == ";":
                    self._maybe_record_decl(code[head_start:i], class_stack,
                                            fi, head_start)
                head_start = i + 1
                i += 1
                continue
            if c == "(":
                # Skip over parenthesised stuff so `;` inside `for(...)`
                # or parameter defaults never resets the head.
                depth = 0
                while i < end:
                    if code[i] == "(":
                        depth += 1
                    elif code[i] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif code[i] == "{" or code[i] == "}":
                        break  # malformed; bail to normal handling
                    i += 1
                i += 1
                continue
            if c != "{":
                i += 1
                continue
            head = code[head_start:i]
            kind, name = self._classify(head)
            if kind == "namespace":
                # Transparent: keep scanning inside with same class stack.
                head_start = i + 1
                i += 1
                continue
            close = match_brace(code, i)
            if kind == "class":
                class_extents.append((name, i, close))
                self._scan_region(fi, code, i + 1, close,
                                  class_stack + [name], class_extents,
                                  func_extents)
            elif kind == "function":
                func_extents.append((head_start, close))
                self._record_function(fi, head, head_start, i, close,
                                      class_stack, name)
            # 'other' scopes (enums, initializers, lambdas at odd scopes)
            # are skipped wholesale.
            i = close + 1
            head_start = i

    def _classify(self, head: str):
        m = NAMESPACE_HEAD_RE.search(head)
        if m and "(" not in head:
            return "namespace", m.group(1) or ""
        m = CLASS_HEAD_RE.search(head)
        if m:
            return "class", m.group(1)
        paren = find_param_paren(head)
        if paren is None:
            return "other", ""
        m = NAME_BEFORE_PAREN_RE.search(head[:paren])
        if not m:
            return "other", ""
        name = re.sub(r"\s+", "", m.group(1))
        base = name.split("::")[-1].lstrip("~")
        if base in HEAD_KEYWORDS or not base:
            return "other", ""
        # `= [..](..) {` lambdas / brace-initialised variables are not
        # function definitions.
        pre = head[:paren]
        if "=" in pre.split(name)[0]:
            return "other", ""
        return "function", name

    def _maybe_record_decl(self, head: str, class_stack, fi, head_start):
        annos = head_annotations(head)
        if not annos:
            return
        paren = find_param_paren(head)
        if paren is None:
            return
        m = NAME_BEFORE_PAREN_RE.search(head[:paren])
        if not m:
            return
        name = re.sub(r"\s+", "", m.group(1))
        cls = class_stack[-1] if class_stack else ""
        simple = name.split("::")[-1]
        if "::" in name:
            cls = name.split("::")[-2]
        key = (cls, simple)
        prev = self.result.decl_annotations.get(key)
        if prev:
            prev[0].update(annos)
        else:
            self.result.decl_annotations[key] = (
                annos, fi.rel, fi.linemap.line(head_start))

    def _record_function(self, fi, head, head_start, brace, close,
                         class_stack, name):
        simple = name.split("::")[-1]
        if "::" in name:
            cls = name.split("::")[-2]
        else:
            cls = class_stack[-1] if class_stack else ""
        qual = f"{cls}::{simple}" if cls else simple
        fn = FunctionInfo(
            qual=qual, simple=simple, cls=cls, rel=fi.rel,
            line=fi.linemap.line(brace if head.strip() == "" else
                                 head_start + len(head) - len(head.lstrip())),
            offset=head_start,
            text=fi.code[head_start:close + 1],
            annotations=head_annotations(head))
        self.result.functions.append(fn)

    FIELD_RE = re.compile(
        r"(?m)^\s*(?:mutable\s+)?(?:const\s+)?(?:static\s+)?"
        r"([A-Za-z_][\w:]*)(?:\s*<[^;{}()]*>)?\s*[*&]?\s+"
        r"([A-Za-z_]\w*)\s*(?:;|=[^=]|\{)")
    FIELD_TYPE_SKIP = {"return", "using", "typedef", "namespace", "goto",
                       "case", "delete", "throw", "new", "template", "else",
                       "public", "private", "protected", "friend", "enum",
                       "struct", "class", "union", "operator"}

    def _scan_fields(self, fi, class_extents, func_extents):
        for m in self.FIELD_RE.finditer(fi.code):
            off = m.start()
            if any(s <= off < e for s, e in func_extents):
                continue  # locals are resolved from the function text
            typ = m.group(1).split("::")[-1]
            if typ in self.FIELD_TYPE_SKIP:
                continue
            owner = ""
            best = None
            for name, s, e in class_extents:
                if s <= off < e and (best is None or s > best):
                    owner, best = name, s
            self.result.fields.append((owner, m.group(2), typ))


# ---------------------------------------------------------------------------
# libclang frontend
# ---------------------------------------------------------------------------


def load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    candidates = []
    for pat in ("/usr/lib/llvm-*/lib/libclang-*.so*",
                "/usr/lib/llvm-*/lib/libclang.so*",
                "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                "/usr/lib/*/libclang*.so*"):
        candidates.extend(sorted(globmod.glob(pat), reverse=True))
    for lib in candidates:
        try:
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


class LibclangFrontend:
    FN_KINDS = None  # set lazily from cindex

    def __init__(self, cindex, result: ParseResult, root: pathlib.Path):
        self.cindex = cindex
        self.result = result
        self.root = root
        ck = cindex.CursorKind
        self.fn_kinds = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                         ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE}
        self.class_kinds = {ck.CLASS_DECL, ck.STRUCT_DECL, ck.CLASS_TEMPLATE,
                            ck.CLASS_TEMPLATE_PARTIAL_SPECIALIZATION}
        self.seen = set()       # (rel, offset) dedup across TUs
        self.seen_fields = set()

    def parse_compdb(self, compdb: pathlib.Path, wanted: dict) -> int:
        """wanted: rel -> raw text of files in scope. Returns #TUs parsed."""
        cindex = self.cindex
        comp_dir = compdb if compdb.is_dir() else compdb.parent
        db = cindex.CompilationDatabase.fromDirectory(str(comp_dir))
        index = cindex.Index.create()
        parsed = 0
        for cmd in db.getAllCompileCommands():
            args = self._tu_args(cmd)
            src = cmd.filename
            try:
                tu = index.parse(src, args=args)
            except Exception as e:  # pragma: no cover - environment specific
                print(f"mwsj_check: warning: failed to parse {src}: {e}",
                      file=sys.stderr)
                continue
            parsed += 1
            self._walk_tu(tu, wanted)
        return parsed

    def _tu_args(self, cmd):
        raw = list(cmd.arguments)
        args = []
        skip = False
        for a in raw[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c",):
                continue
            if a == "-o":
                skip = True
                continue
            if a == cmd.filename or a.endswith(os.path.basename(
                    cmd.filename)):
                continue
            args.append(a)
        return args

    def _walk_tu(self, tu, wanted):
        for cur in tu.cursor.walk_preorder():
            try:
                loc_file = cur.location.file
            except Exception:
                continue
            if loc_file is None:
                continue
            try:
                rel = str(pathlib.Path(loc_file.name).resolve()
                          .relative_to(self.root))
            except ValueError:
                continue
            if rel not in wanted:
                continue
            if cur.kind in self.fn_kinds and cur.is_definition():
                self._record_function(cur, rel)
            elif cur.kind == self.cindex.CursorKind.FIELD_DECL:
                self._record_field(cur, rel)

    def _ensure_file(self, rel, raw):
        if rel in self.result.files:
            return self.result.files[rel]
        code = strip_comments_and_strings(raw)
        fi = FileInfo(rel=rel, raw=raw, code=code, linemap=LineMap(code))
        self.result.files[rel] = fi
        scan_allows(fi, self.result.findings)
        return fi

    def _record_function(self, cur, rel):
        start = cur.extent.start.offset
        key = (rel, start)
        if key in self.seen:
            return
        self.seen.add(key)
        raw = pathlib.Path(self.root / rel).read_text(errors="replace")
        fi = self._ensure_file(rel, raw)
        end = min(cur.extent.end.offset, len(fi.code) - 1)
        simple = cur.spelling or ""
        parent = cur.semantic_parent
        cls = ""
        if parent is not None and parent.kind in self.class_kinds:
            cls = parent.spelling or ""
        qual = f"{cls}::{simple}" if cls else simple
        annos = set()
        for c in list(cur.get_children()):
            if c.kind == self.cindex.CursorKind.ANNOTATE_ATTR:
                effect = ANNOTATE_PAYLOADS.get(c.displayname or c.spelling)
                if effect:
                    annos.add(effect)
        # Annotations may live on an earlier declaration.
        canon = cur.canonical
        if canon is not None and canon != cur:
            for c in list(canon.get_children()):
                if c.kind == self.cindex.CursorKind.ANNOTATE_ATTR:
                    effect = ANNOTATE_PAYLOADS.get(
                        c.displayname or c.spelling)
                    if effect:
                        annos.add(effect)
        fn = FunctionInfo(
            qual=qual, simple=simple, cls=cls, rel=rel,
            line=cur.extent.start.line, offset=start,
            text=fi.code[start:end + 1], annotations=annos)
        self.result.functions.append(fn)

    def _record_field(self, cur, rel):
        tsp = cur.type.spelling if cur.type is not None else ""
        if not tsp:
            return
        # "mwsj::CondVar", "const std::vector<int> &" -> simple type name.
        typ = re.sub(r"[<&*].*$", "", tsp).strip()
        typ = typ.split("::")[-1].split()[-1] if typ else ""
        parent = cur.semantic_parent
        cls = parent.spelling if parent is not None else ""
        key = (cls, cur.spelling)
        if key in self.seen_fields or not typ:
            return
        self.seen_fields.add(key)
        self.result.fields.append((cls, cur.spelling, typ))


# ---------------------------------------------------------------------------
# Feature extraction (shared between frontends)
# ---------------------------------------------------------------------------

ALLOC_PATTERNS = [
    (re.compile(r"(?<![\w.:])new\b(?!\s*\()"), "operator new"),
    (re.compile(r"(?<![\w:.])(?:malloc|calloc|realloc|aligned_alloc|strdup)"
                r"\s*\("), "malloc-family call"),
    (re.compile(r"\bmake_(?:unique|shared)\s*<"), "make_unique/make_shared"),
    (re.compile(r"(?:\.|->)\s*(push_back|emplace_back|emplace|resize|"
                r"reserve|insert|assign|append)\s*\("),
     "growing-container call"),
]

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
RNG_RE = re.compile(
    r"(?<![\w:.])(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine|random_device|r?and(?:om)?48|rand|srand|"
    r"uniform_int_distribution|uniform_real_distribution|"
    r"bernoulli_distribution)\b")
SORT_RE = re.compile(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(")
LAMBDA_RE = re.compile(r"\[[^\]\[]*\]\s*\(([^)]*)\)\s*(?:->\s*\w+\s*)?\{")
PTR_PARAM_RE = re.compile(r"\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*$")
BLOCKING_INTRINSIC_RE = re.compile(
    r"\bsleep_(?:for|until)\s*\(|(?:\.|->)\s*join\s*\(")

CALL_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*(?:\.|->)\s*)?"
    r"([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)\s*\(")

# Member-call names too generic to resolve through the registry; their
# allocation behaviour is covered by ALLOC_PATTERNS instead.
CALL_SKIP = {
    "push_back", "emplace_back", "emplace", "resize", "reserve", "insert",
    "erase", "assign", "append", "size", "begin", "end", "rbegin", "rend",
    "clear", "empty", "data", "front", "back", "c_str", "get", "reset",
    "release", "count", "find", "at", "swap", "str", "first", "second",
    "load", "store", "fetch_add", "fetch_sub", "exchange", "compare",
    "substr", "length", "lock", "unlock", "value", "has_value", "emplace_hint",
    "capacity", "shrink_to_fit", "min", "max", "abs", "move", "forward",
    "sort", "make_unique", "make_shared", "push", "pop", "top",
}

HEAD_KEYWORD_CALLS = HEAD_KEYWORDS | {
    "while", "switch", "if", "for", "return", "sizeof", "alignof",
    "static_cast", "const_cast", "dynamic_cast", "reinterpret_cast",
    "noexcept", "assert", "co_await", "co_return", "typeid",
}

LOCK_RE = re.compile(
    r"\b(?:MutexLock|(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock)"
    r"\s*(?:<[^>]*>)?)\s+[A-Za-z_]\w*\s*\(\s*&?\s*"
    r"([A-Za-z_][\w\->.\[\]]*)\s*\)")


def scan_features(fn: FunctionInfo, fi: FileInfo, in_common: bool) -> None:
    text = fn.text
    base = fn.offset

    def line_of(m_start: int) -> int:
        return fi.linemap.line(base + m_start)

    for pat, what in ALLOC_PATTERNS:
        for m in pat.finditer(text):
            label = what
            if what == "growing-container call":
                label = f"growing-container call .{m.group(1)}()"
            fn.alloc_sites.append((line_of(m.start()), label))
    for m in UNORDERED_RE.finditer(text):
        fn.nondet_sites.append(
            (line_of(m.start()), "unordered container on an emit path"))
    if not in_common:
        for m in RNG_RE.finditer(text):
            fn.nondet_sites.append(
                (line_of(m.start()),
                 f"RNG '{m.group(0)}' outside src/common/"))
    for line, what in scan_ptr_sorts(text, line_of):
        fn.nondet_sites.append((line, what))
    for m in BLOCKING_INTRINSIC_RE.finditer(text):
        fn.blocking_sites.append(
            (line_of(m.start()), f"blocking call '{m.group(0).strip()}'"))
    scan_calls(fn, line_of)
    scan_locks(fn, line_of)


def scan_ptr_sorts(text: str, line_of):
    out = []
    for sm in SORT_RE.finditer(text):
        # Balanced-paren segment of the sort call.
        i = sm.end() - 1
        depth = 0
        j = i
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        seg = text[i:j + 1]
        lm = LAMBDA_RE.search(seg)
        if not lm:
            continue
        params = [p.strip() for p in lm.group(1).split(",") if p.strip()]
        names = []
        for p in params:
            pm = PTR_PARAM_RE.search(p)
            if pm:
                names.append(pm.group(1))
        if len(names) != 2:
            continue
        # Comparator body: from the lambda's '{' to its matching '}'.
        bo = seg.index("{", lm.start())
        bc = match_brace(seg, bo)
        body = seg[bo:bc + 1]
        a, b = (re.escape(n) for n in names)
        if re.search(rf"\b{a}\s*[<>]=?\s*{b}\b", body) or \
           re.search(rf"\b{b}\s*[<>]=?\s*{a}\b", body) or \
           "reinterpret_cast<uintptr_t>" in body:
            out.append((line_of(sm.start() + i - (sm.end() - 1 - sm.start())),
                        "sort comparator orders by raw pointer value"))
    return out


def scan_calls(fn: FunctionInfo, line_of) -> None:
    text = fn.text
    for m in CALL_RE.finditer(text):
        receiver = m.group(1) or ""
        name = re.sub(r"\s+", "", m.group(2))
        simple = name.split("::")[-1]
        if simple in HEAD_KEYWORD_CALLS or simple in CALL_SKIP:
            continue
        prev = text[m.start() - 1] if m.start() > 0 else ""
        if prev == ":" and "::" not in name and not receiver:
            continue  # tail of a qualified name already matched
        fn.calls.append((name, line_of(m.start()), m.start(), receiver))


def scan_locks(fn: FunctionInfo, line_of) -> None:
    """Records an ordered event stream for the lock-order rule.

    Events: ('open'|'close', off, 0, "", "") / ('lock', off, line, expr, "")
    / ('call', off, line, name, receiver). Scope handling happens in the
    analyzer, which knows lock identities.
    """
    events = []
    for m in LOCK_RE.finditer(fn.text):
        events.append(("lock", m.start(), line_of(m.start()), m.group(1),
                       ""))
    body_start = fn.text.find("{")
    if body_start < 0:
        body_start = 0
    for i in range(body_start, len(fn.text)):
        if fn.text[i] == "{":
            events.append(("open", i, 0, "", ""))
        elif fn.text[i] == "}":
            events.append(("close", i, 0, "", ""))
    for name, line, off, receiver in fn.calls:
        events.append(("call", off, line, name, receiver))
    events.sort(key=lambda e: e[1])
    fn.lock_events = events


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    rel: str
    line: int
    rule: str
    message: str
    fn: str  # enclosing/root function for baseline matching


class Analyzer:
    def __init__(self, result: ParseResult, disabled: set):
        self.r = result
        self.disabled = disabled
        self.by_qual = {}
        self.by_cls_simple = {}
        self.by_simple = {}
        self.findings = list(result.findings)
        self._acquires_memo = {}

    # -- registry -----------------------------------------------------------

    def build(self):
        defined = set()
        for fn in self.r.functions:
            defined.add((fn.cls, fn.simple))
            extra = self.r.decl_annotations.get((fn.cls, fn.simple))
            if extra:
                fn.annotations.update(extra[0])
            if not fn.cls:
                extra = self.r.decl_annotations.get(("", fn.simple))
                if extra:
                    fn.annotations.update(extra[0])
        # Annotated declarations with no definition in the scanned set
        # (header-declared externs) still participate as leaf nodes so e.g.
        # blocking-reach sees calls into them.
        for (cls, simple), (annos, rel, line) in \
                self.r.decl_annotations.items():
            if (cls, simple) in defined:
                continue
            qual = f"{cls}::{simple}" if cls else simple
            self.r.functions.append(FunctionInfo(
                qual=qual, simple=simple, cls=cls, rel=rel, line=line,
                offset=0, text="", annotations=set(annos)))
        for fn in self.r.functions:
            self.by_qual.setdefault(fn.qual, []).append(fn)
            self.by_cls_simple.setdefault((fn.cls, fn.simple),
                                          []).append(fn)
            self.by_simple.setdefault(fn.simple, []).append(fn)
        for fn in self.r.functions:
            fi = self.r.files[fn.rel]
            in_common = fn.rel.replace(os.sep, "/").startswith("src/common")
            scan_features(fn, fi, in_common)
        self.mutex_owners = {}
        self.mutex_pairs = set()
        self.field_types = {}    # member name -> set of simple type names
        for cls, member, typ in self.r.fields:
            self.field_types.setdefault(member, set()).add(typ)
            if typ == "Mutex":
                self.mutex_pairs.add((cls, member))
                self.mutex_owners.setdefault(member, set()).add(cls)

    def receiver_types(self, receiver: str, caller: FunctionInfo):
        """Candidate type names for `recv.method(...)`: a local/param
        declaration in the caller wins, then the field registry."""
        m = re.search(rf"\b([A-Za-z_][\w:]*)(?:\s*<[^;>]*>)?\s*"
                      rf"[*&]?\s+{re.escape(receiver)}\s*[;({{=,)]",
                      caller.text)
        if m:
            typ = m.group(1).split("::")[-1]
            if typ not in ("return", "auto", "const"):
                return {typ}
        return self.field_types.get(receiver, set())

    def resolve(self, name: str, caller: FunctionInfo, receiver: str = ""):
        simple = name.split("::")[-1]
        if "::" in name:
            cls = name.split("::")[-2]
            hits = self.by_cls_simple.get((cls, simple))
            if hits:
                return hits
            return self.by_simple.get(simple, [])
        if receiver and receiver != "this":
            types = self.receiver_types(receiver, caller)
            if types:
                hits = []
                for t in types:
                    hits.extend(self.by_cls_simple.get((t, simple), []))
                # A typed receiver that resolves to nothing is an external
                # type (std::vector, ...): do NOT fall through to the
                # name-only tiers, they would guess wrong.
                return hits
        if caller.cls:
            hits = self.by_cls_simple.get((caller.cls, simple))
            if hits:
                return hits
        same_file = [f for f in self.by_simple.get(simple, [])
                     if f.rel == caller.rel]
        if same_file:
            return same_file
        return self.by_simple.get(simple, [])

    # -- reachability -------------------------------------------------------

    def reachable(self, root: FunctionInfo, stop_blocking_ok=False):
        """BFS over resolved calls. Yields (fn, path, entry_line) where
        path is the qual-name chain from root and entry_line the call-site
        line in the *caller* that entered fn."""
        seen = {id(root)}
        queue = [(root, [root.qual], root.line)]
        while queue:
            fn, path, entry = queue.pop(0)
            yield fn, path, entry
            if len(path) > 24:
                continue
            for name, line, _off, receiver in fn.calls:
                for callee in self.resolve(name, fn, receiver):
                    if id(callee) in seen:
                        continue
                    if stop_blocking_ok and \
                            "blocking_ok" in callee.annotations:
                        # The barrier itself still gets reported-on if it
                        # is *also* MWSJ_BLOCKING — but we do not descend.
                        seen.add(id(callee))
                        continue
                    seen.add(id(callee))
                    queue.append((callee, path + [callee.qual], line))

    def allowed(self, rel: str, line: int, rule: str) -> bool:
        fi = self.r.files[rel]
        allows = fi.allows
        for ln in (line, line - 1):
            if rule in allows.get(ln, ()):
                return True
        # A multi-line justification puts the allow(...) head several lines
        # up; honor it across the contiguous //-comment block directly above
        # the finding line.
        lines = fi.raw.split("\n")
        ln = line - 1
        while 1 <= ln <= len(lines) and lines[ln - 1].lstrip().startswith("//"):
            if rule in allows.get(ln, ()):
                return True
            ln -= 1
        return False

    def add(self, rel, line, rule, message, fn_qual):
        if rule in self.disabled:
            return
        if rule != "bad-suppression" and self.allowed(rel, line, rule):
            return
        self.findings.append(Finding(rel, line, rule, message, fn_qual))

    # -- rules --------------------------------------------------------------

    def run(self):
        self.rule_alloc_free_reach()
        self.rule_emit_determinism()
        self.rule_blocking_reach()
        self.rule_lock_order()
        # Dedup identical findings (templates parsed in many TUs, multiple
        # roots reaching one site, ...): keep the first per (rel,line,rule).
        seen = set()
        out = []
        for f in sorted(self.findings,
                        key=lambda f: (f.rel, f.line, f.rule, f.message)):
            key = (f.rel, f.line, f.rule)
            if key in seen:
                continue
            seen.add(key)
            out.append(f)
        self.findings = out
        return self.findings

    def rule_alloc_free_reach(self):
        roots = [f for f in self.r.functions if "alloc_free" in f.annotations]
        for root in roots:
            for fn, path, _entry in self.reachable(root):
                for line, what in fn.alloc_sites:
                    via = "" if fn is root else \
                        f" via {' -> '.join(path)}"
                    self.add(fn.rel, line, "alloc-free-reach",
                             f"{what} reachable from MWSJ_ALLOC_FREE "
                             f"'{root.qual}'{via}", fn.qual)

    def rule_emit_determinism(self):
        roots = [f for f in self.r.functions
                 if "deterministic" in f.annotations]
        for root in roots:
            for fn, path, _entry in self.reachable(root):
                for line, what in fn.nondet_sites:
                    via = "" if fn is root else \
                        f" via {' -> '.join(path)}"
                    self.add(fn.rel, line, "emit-determinism",
                             f"{what} reachable from MWSJ_DETERMINISTIC "
                             f"'{root.qual}'{via}", fn.qual)

    def rule_blocking_reach(self):
        roots = [f for f in self.r.functions
                 if ("alloc_free" in f.annotations or
                     "deterministic" in f.annotations)]
        for root in roots:
            for fn, path, entry in self.reachable(root,
                                                  stop_blocking_ok=True):
                if fn is root:
                    for line, what in fn.blocking_sites:
                        self.add(fn.rel, line, "blocking-reach",
                                 f"{what} inside non-blocking '{root.qual}'",
                                 fn.qual)
                    continue
                if "blocking" in fn.annotations:
                    self.add(fn.rel, entry, "blocking-reach",
                             f"MWSJ_BLOCKING '{fn.qual}' reachable from "
                             f"'{root.qual}' via {' -> '.join(path)} "
                             "without an MWSJ_BLOCKING_OK barrier", fn.qual)
                for line, what in fn.blocking_sites:
                    self.add(fn.rel, line, "blocking-reach",
                             f"{what} reachable from non-blocking "
                             f"'{root.qual}' via {' -> '.join(path)}",
                             fn.qual)

    # -- lock order ---------------------------------------------------------

    def lock_identity(self, expr: str, fn: FunctionInfo) -> str:
        expr = expr.replace("this->", "").strip()
        member = re.split(r"->|\.", expr)[-1].strip("&* \t")
        if expr == member and fn.cls and (fn.cls, member) in self.mutex_pairs:
            return f"{fn.cls}::{member}"
        owners = self.mutex_owners.get(member, set())
        if len(owners) == 1:
            owner = next(iter(owners))
            return f"{owner}::{member}" if owner else member
        if fn.cls and (fn.cls, member) in self.mutex_pairs:
            return f"{fn.cls}::{member}"
        return expr

    def acquires(self, fn: FunctionInfo, stack=None) -> set:
        if id(fn) in self._acquires_memo:
            return self._acquires_memo[id(fn)]
        stack = stack or set()
        if id(fn) in stack:
            return set()
        stack = stack | {id(fn)}
        out = set()
        for ev in fn.lock_events:
            if ev[0] == "lock":
                out.add(self.lock_identity(ev[3], fn))
            elif ev[0] == "call":
                for callee in self.resolve(ev[3], fn, ev[4]):
                    out |= self.acquires(callee, stack)
        self._acquires_memo[id(fn)] = out
        return out

    def rule_lock_order(self):
        edges = {}  # (a, b) -> (rel, line, desc)
        for fn in self.r.functions:
            depth = 0
            active = []  # (identity, depth, line)
            for ev in fn.lock_events:
                kind = ev[0]
                if kind == "open":
                    depth += 1
                elif kind == "close":
                    depth -= 1
                    active = [l for l in active if l[1] <= depth]
                elif kind == "lock":
                    ident = self.lock_identity(ev[3], fn)
                    for held, _d, _l in active:
                        if held != ident:
                            edges.setdefault(
                                (held, ident),
                                (fn.rel, ev[2],
                                 f"'{fn.qual}' acquires {ident} while "
                                 f"holding {held}"))
                    active.append((ident, depth, ev[2]))
                elif kind == "call":
                    if not active:
                        continue
                    for callee in self.resolve(ev[3], fn, ev[4]):
                        for acq in self.acquires(callee):
                            for held, _d, _l in active:
                                if held != acq:
                                    edges.setdefault(
                                        (held, acq),
                                        (fn.rel, ev[2],
                                         f"'{fn.qual}' holds {held} across "
                                         f"a call to '{callee.qual}' which "
                                         f"acquires {acq}"))
        # Cycle detection via SCC (Tarjan, iterative enough at this size).
        adj = {}
        for (a, b) in edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        sccs = tarjan_sccs(adj)
        for scc in sccs:
            if len(scc) < 2:
                continue
            scc_set = set(scc)
            cyc_edges = [(pair, info) for pair, info in edges.items()
                         if pair[0] in scc_set and pair[1] in scc_set]
            cyc_edges.sort(key=lambda e: (e[1][0], e[1][1]))
            rel, line, _ = cyc_edges[0][1]
            detail = "; ".join(info[2] for _pair, info in cyc_edges)
            self.add(rel, line, "lock-order",
                     f"lock-order cycle among {{{', '.join(sorted(scc))}}}: "
                     f"{detail}", "")


def tarjan_sccs(adj):
    index_counter = [0]
    stack, lowlinks, index, on_stack = [], {}, {}, {}
    sccs = []

    def strongconnect(v):
        work = [(v, iter(sorted(adj.get(v, ()))))]
        index[v] = lowlinks[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack[v] = True
        call_order = [v]
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlinks[w] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    call_order.append(w)
                    advanced = True
                    break
                elif on_stack.get(w):
                    lowlinks[node] = min(lowlinks[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(sorted(scc))

    for v in sorted(adj):
        if v not in index:
            strongconnect(v)
    return sccs


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def load_baseline(path: pathlib.Path):
    entries = []
    for i, line in enumerate(path.read_text().splitlines(), 1):
        s = line.strip()
        if not s or s.startswith("#"):
            continue
        parts = s.split("|")
        if len(parts) != 4 or not parts[3].strip():
            raise SystemExit(
                f"mwsj_check: {path}:{i}: baseline entries are "
                "'rule|path|function|justification' with a non-empty "
                "justification")
        entries.append((parts[0].strip(), parts[1].strip(),
                        parts[2].strip(), i))
    return entries


def apply_baseline(findings, entries, baseline_path):
    kept = []
    used = set()
    for f in findings:
        matched = None
        for rule, rel, fn, lineno in entries:
            if f.rule == rule and f.rel == rel and (fn == "*" or f.fn == fn):
                matched = lineno
                break
        if matched is None:
            kept.append(f)
        else:
            used.add(matched)
    for rule, rel, fn, lineno in entries:
        if lineno not in used:
            kept.append(Finding(
                str(baseline_path), lineno, "stale-baseline",
                f"baseline entry '{rule}|{rel}|{fn}' matches no finding — "
                "remove it", fn))
    return kept


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def collect_files(paths, root: pathlib.Path):
    exts = {".h", ".hpp", ".cc", ".cpp", ".cxx"}
    out = {}
    for p in paths:
        path = pathlib.Path(p)
        if not path.is_absolute():
            path = (root / p).resolve()
        if path.is_file():
            files = [path]
        elif path.is_dir():
            files = sorted(x for x in path.rglob("*")
                           if x.suffix in exts and "build" not in x.parts)
        else:
            raise SystemExit(f"mwsj_check: no such path: {p}")
        for f in files:
            try:
                rel = str(f.resolve().relative_to(root))
            except ValueError:
                rel = str(f)
            out[rel] = f
    return out


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="mwsj_check.py",
        description="call-graph-aware invariant analyzer (see module doc)")
    ap.add_argument("paths", nargs="*", help="files or directories to check")
    ap.add_argument("--root", default=str(REPO_ROOT),
                    help="tree root for relative paths (default: repo root)")
    ap.add_argument("--frontend", choices=["auto", "libclang", "textual"],
                    default="auto")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (or its directory) for the "
                         "libclang frontend")
    ap.add_argument("--baseline", default=None,
                    help="justified-baseline file; stale entries fail")
    ap.add_argument("--disable", action="append", default=[],
                    metavar="RULE", help="disable a rule (repeatable)")
    ap.add_argument("--report", default=None,
                    help="also write findings to this file (CI artifact)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}: {desc}")
        return 0
    if not args.paths:
        ap.print_usage(sys.stderr)
        print("mwsj_check: error: no paths given", file=sys.stderr)
        return 2
    for rule in args.disable:
        if rule not in RULES:
            print(f"mwsj_check: error: unknown rule '{rule}'",
                  file=sys.stderr)
            return 2

    root = pathlib.Path(args.root).resolve()
    try:
        wanted = collect_files(args.paths, root)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    result = ParseResult()
    frontend_used = "textual"
    cindex = None
    if args.frontend in ("auto", "libclang"):
        cindex = load_cindex()
        if cindex is None and args.frontend == "libclang":
            print("mwsj_check: error: --frontend=libclang but python "
                  "clang bindings / libclang.so are unavailable",
                  file=sys.stderr)
            return 2
    if cindex is not None and args.compdb:
        compdb = pathlib.Path(args.compdb)
        if not compdb.is_absolute():
            compdb = (root / compdb).resolve()
        if not compdb.exists():
            print(f"mwsj_check: error: compdb not found: {compdb}",
                  file=sys.stderr)
            return 2
        fe = LibclangFrontend(cindex, result, root)
        parsed = fe.parse_compdb(compdb, wanted)
        if parsed == 0:
            print("mwsj_check: warning: compilation database named no "
                  "parsable TU; falling back to the textual frontend",
                  file=sys.stderr)
        else:
            frontend_used = "libclang"
        # Headers (or files outside the compdb) that carry annotations but
        # were not reached by any TU still get parsed textually below.
    if frontend_used != "libclang":
        if args.frontend == "libclang":
            # libclang loaded but no compdb to drive it.
            if not args.compdb:
                print("mwsj_check: error: --frontend=libclang requires "
                      "--compdb", file=sys.stderr)
                return 2
        tf = TextualFrontend(result)
        for rel, path in sorted(wanted.items()):
            tf.parse_file(rel, path.read_text(errors="replace"))
    else:
        # Fill in any wanted file no TU visited (annotation-only headers).
        tf = TextualFrontend(result)
        for rel, path in sorted(wanted.items()):
            if rel not in result.files:
                tf.parse_file(rel, path.read_text(errors="replace"))

    analyzer = Analyzer(result, set(args.disable))
    analyzer.build()
    findings = analyzer.run()

    if args.baseline:
        bp = pathlib.Path(args.baseline)
        if not bp.is_absolute():
            bp = (root / args.baseline).resolve()
        if bp.exists():
            findings = apply_baseline(findings, load_baseline(bp), bp)
        elif pathlib.Path(args.baseline).name:
            print(f"mwsj_check: warning: baseline {bp} not found; "
                  "treating as empty", file=sys.stderr)

    lines = [f"{f.rel}:{f.line}: [{f.rule}] {f.message}" for f in findings]
    for line in lines:
        print(line)
    summary = (f"mwsj_check[{frontend_used}]: {len(findings)} finding(s) "
               f"over {len(result.files)} file(s), "
               f"{len(result.functions)} function(s)")
    print(summary, file=sys.stderr)
    if args.report:
        rp = pathlib.Path(args.report)
        rp.parent.mkdir(parents=True, exist_ok=True)
        rp.write_text("\n".join(lines + [summary]) + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
