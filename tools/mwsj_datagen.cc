// mwsj_datagen — generate rectangle datasets for mwsj_join.
//
//   mwsj_datagen --kind synthetic --n 100000 --seed 1 --out r1.csv
//                [--space 100000] [--lmax 100] [--bmax 100]
//                [--dist-xy uniform|gaussian|clustered]
//   mwsj_datagen --kind california --n 2092079 --out roads.bin
//
// The synthetic generator implements the paper's §7.8.2 parameters; the
// california generator synthesizes MBBs matching the published statistics
// of the Census 2000 TIGER/Line road dataset.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/stopwatch.h"
#include "datagen/california.h"
#include "datagen/synthetic.h"
#include "io/dataset_io.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --kind synthetic|california --n COUNT --out PATH\n"
               "  [--seed S] [--space SIDE] [--lmax L] [--bmax B]\n"
               "  [--dist-xy uniform|gaussian|clustered]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string kind = "synthetic";
  std::string out_path;
  int64_t n = 0;
  uint64_t seed = 1;
  double space = 100'000;
  double lmax = 100;
  double bmax = 100;
  mwsj::Distribution dist_xy = mwsj::Distribution::kUniform;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--kind" && (v = next())) {
      kind = v;
    } else if (arg == "--n" && (v = next())) {
      n = std::atoll(v);
    } else if (arg == "--seed" && (v = next())) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--out" && (v = next())) {
      out_path = v;
    } else if (arg == "--space" && (v = next())) {
      space = std::atof(v);
    } else if (arg == "--lmax" && (v = next())) {
      lmax = std::atof(v);
    } else if (arg == "--bmax" && (v = next())) {
      bmax = std::atof(v);
    } else if (arg == "--dist-xy" && (v = next())) {
      if (std::strcmp(v, "uniform") == 0) {
        dist_xy = mwsj::Distribution::kUniform;
      } else if (std::strcmp(v, "gaussian") == 0) {
        dist_xy = mwsj::Distribution::kGaussian;
      } else if (std::strcmp(v, "clustered") == 0) {
        dist_xy = mwsj::Distribution::kClustered;
      } else {
        std::fprintf(stderr, "unknown distribution '%s'\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown or incomplete flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (out_path.empty() || n <= 0) return Usage(argv[0]);

  mwsj::Stopwatch watch;
  std::vector<mwsj::Rect> rects;
  if (kind == "synthetic") {
    mwsj::SyntheticParams params;
    params.num_rectangles = n;
    params.seed = seed;
    params.x_max = params.y_max = space;
    params.l_max = lmax;
    params.b_max = bmax;
    params.dist_x = params.dist_y = dist_xy;
    auto data = mwsj::GenerateSynthetic(params);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    rects = std::move(data).value();
  } else if (kind == "california") {
    mwsj::CaliforniaParams params;
    params.num_roads = n;
    params.seed = seed;
    rects = mwsj::GenerateCaliforniaRoads(params);
  } else {
    std::fprintf(stderr, "unknown kind '%s'\n", kind.c_str());
    return 2;
  }

  const double generate_seconds = watch.ElapsedSeconds();

  watch.Reset();
  const mwsj::Status st = mwsj::WriteRects(out_path, rects);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rectangles to %s (generate %.3fs, write %.3fs)\n",
              rects.size(), out_path.c_str(), generate_seconds,
              watch.ElapsedSeconds());
  return 0;
}
