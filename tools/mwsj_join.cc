// mwsj_join — run a multi-way spatial join from dataset files.
//
//   mwsj_join --query "R1 OV R2 AND R2 RA(100) R3"
//             --input R1=cities.csv --input R2=forests.bin
//             --input R3=rivers.csv
//             [--algorithm crep|crepl|cascade|allrep|brute|knn-mr]
//             [--k N]
//             [--grid 8x8] [--partitioning uniform|equidepth]
//             [--distinct-ids] [--count-only] [--optimize-order]
//             [--estimate] [--verify] [--explain] [--threads N]
//             [--jobs N]
//             [--faults seed=42,crash=0.05,flaky=0.05,slow=0.02]
//             [--output tuples.csv] [--stats-json stats.json]
//             [--trace trace.json]
//
// Datasets are CSV (x,y,l,b with header) or mwsj binary, selected by
// extension. Prints the run's statistics to stdout; with --output, writes
// the result tuples as CSV. --threads N runs the engine on a worker pool
// (N=0 picks the hardware concurrency); output is identical either way.
// --faults SPEC injects a seeded deterministic fault plan (crash/flaky/
// slow task attempts, see mapreduce/fault.h) into every engine job; the
// output stays byte-identical to a fault-free run while the per-job retry
// and wasted-work accounting is printed and exported via --stats-json.
// --trace PATH records every engine phase, per-chunk/per-reducer task, and
// algorithm stage as spans in Chrome trace-event JSON; open the file in
// https://ui.perfetto.dev or chrome://tracing.
// --jobs N exercises the service path (toward mwsjd): the datasets are
// registered in a resident DatasetCatalog and the query is submitted N
// times to a JobScheduler sharing one pool/tracer. All submissions must
// produce identical output; repeat submissions reuse the resident grid and
// C-Rep round-1 artifacts, and the per-submission catalog hit/miss
// accounting is printed (and lands in --stats-json as "catalog").
// --algorithm knn-mr runs the distributed kNN join (queries/knn_mr.h)
// instead of a multiway join: the query must name exactly two relations —
// degenerate query points, then data rectangles — and the output tuples
// are {point, rank, rect} with ranks 0..k-1 per point (--k, default 10).
// All the other machinery (grids, threads, faults, traces, --jobs with
// grid + round-1-bound artifact reuse, stats JSON) applies unchanged.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/str_format.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/dataset_catalog.h"
#include "core/explain.h"
#include "core/runner.h"
#include "core/scheduler.h"
#include "core/verification.h"
#include "io/dataset_io.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/fault.h"
#include "mapreduce/stats_json.h"
#include "queries/knn_mr.h"
#include "query/parser.h"
#include "stats/grid_histogram.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --query QUERY --input NAME=PATH [--input ...]\n"
               "  [--algorithm crep|crepl|cascade|allrep|brute|knn-mr]\n"
               "  [--k N]\n"
               "  [--grid RxC] [--partitioning uniform|equidepth]\n"
               "  [--distinct-ids] [--count-only] [--optimize-order]\n"
               "  [--estimate] [--verify] [--explain] [--threads N]\n"
               "  [--jobs N]\n"
               "  [--faults seed=S,crash=P,flaky=P,slow=P[,bound=N]]\n"
               "  [--output PATH] [--stats-json PATH] [--trace PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_text;
  std::map<std::string, std::string> inputs;
  std::string algorithm_name = "crep";
  std::string output_path;
  std::string stats_json_path;
  std::string trace_path;
  std::string faults_spec;
  bool have_faults = false;
  bool estimate = false;
  bool verify = false;
  bool explain = false;
  int threads = -1;  // -1 = serial (no pool).
  int num_jobs = 1;  // > 1 enables the scheduler/catalog service path.
  int knn_k = 10;    // Neighbors per point under --algorithm knn-mr.
  mwsj::RunnerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--query") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      query_text = v;
    } else if (arg == "--input") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      const char* eq = std::strchr(v, '=');
      if (!eq) {
        std::fprintf(stderr, "--input expects NAME=PATH, got '%s'\n", v);
        return 2;
      }
      inputs[std::string(v, eq)] = std::string(eq + 1);
    } else if (arg == "--algorithm") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      algorithm_name = v;
    } else if (arg == "--grid") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (std::sscanf(v, "%dx%d", &options.grid_rows, &options.grid_cols) !=
          2) {
        std::fprintf(stderr, "--grid expects RxC, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--partitioning") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      if (std::string(v) == "equidepth") {
        options.partitioning = mwsj::Partitioning::kEquiDepth;
      } else if (std::string(v) == "uniform") {
        options.partitioning = mwsj::Partitioning::kUniform;
      } else {
        std::fprintf(stderr, "unknown partitioning '%s'\n", v);
        return 2;
      }
    } else if (arg == "--distinct-ids") {
      options.distinct_ids = true;
    } else if (arg == "--count-only") {
      options.count_only = true;
    } else if (arg == "--optimize-order") {
      options.optimize_cascade_order = true;
    } else if (arg == "--output") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      output_path = v;
    } else if (arg == "--estimate") {
      estimate = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      stats_json_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      trace_path = v;
    } else if (arg == "--faults") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      faults_spec = v;
      have_faults = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults_spec = arg.substr(std::strlen("--faults="));
      have_faults = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(std::strlen("--trace="));
      if (trace_path.empty()) return Usage(argv[0]);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      char* end = nullptr;
      threads = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || threads < 0) {
        std::fprintf(stderr, "--threads expects N >= 0, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      char* end = nullptr;
      num_jobs = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || num_jobs < 1) {
        std::fprintf(stderr, "--jobs expects N >= 1, got '%s'\n", v);
        return 2;
      }
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return Usage(argv[0]);
      char* end = nullptr;
      knn_k = static_cast<int>(std::strtol(v, &end, 10));
      if (end == v || *end != '\0' || knn_k < 1) {
        std::fprintf(stderr, "--k expects N >= 1, got '%s'\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (query_text.empty() || inputs.empty()) return Usage(argv[0]);

  const std::map<std::string, mwsj::Algorithm> algorithms = {
      {"crep", mwsj::Algorithm::kControlledReplicate},
      {"crepl", mwsj::Algorithm::kControlledReplicateInLimit},
      {"cascade", mwsj::Algorithm::kTwoWayCascade},
      {"allrep", mwsj::Algorithm::kAllReplicate},
      {"brute", mwsj::Algorithm::kBruteForce},
  };
  const bool knn_mr = algorithm_name == "knn-mr";
  if (!knn_mr) {
    const auto algo_it = algorithms.find(algorithm_name);
    if (algo_it == algorithms.end()) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm_name.c_str());
      return 2;
    }
    options.algorithm = algo_it->second;
  }

  const mwsj::StatusOr<mwsj::Query> query = mwsj::ParseQuery(query_text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  std::vector<std::vector<mwsj::Rect>> relations;
  for (const std::string& name : query.value().relation_names()) {
    const auto path_it = inputs.find(name);
    if (path_it == inputs.end()) {
      std::fprintf(stderr, "no --input for relation '%s'\n", name.c_str());
      return 2;
    }
    auto data = mwsj::ReadRects(path_it->second);
    if (!data.ok()) {
      std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %zu rectangles from %s\n", name.c_str(),
                data.value().size(), path_it->second.c_str());
    relations.push_back(std::move(data).value());
  }

  if (estimate) {
    // Pre-run cardinality estimate from grid histograms over samples.
    const mwsj::Rect space = mwsj::ComputeBoundingSpace(relations);
    const auto grid = mwsj::GridPartition::Create(space, options.grid_rows,
                                                  options.grid_cols);
    if (grid.ok()) {
      std::vector<mwsj::GridHistogram> histograms;
      for (const auto& rel : relations) {
        histograms.emplace_back(grid.value(), rel);
      }
      std::printf("estimated output cardinality: %.3g\n",
                  EstimateJoinCardinality(query.value(), histograms));
    }
  }

  std::unique_ptr<mwsj::ThreadPool> pool;
  if (threads >= 0) {
    pool = std::make_unique<mwsj::ThreadPool>(static_cast<size_t>(threads));
    options.context.pool = pool.get();
    std::printf("engine threads: %zu\n", pool->num_threads());
  }
  std::unique_ptr<mwsj::Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<mwsj::Tracer>();
    options.context.tracer = tracer.get();
  }
  mwsj::FaultPlan fault_plan;
  if (have_faults) {
    auto parsed = mwsj::FaultPlan::Parse(faults_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--faults: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    fault_plan = std::move(parsed).value();
    options.context.faults = &fault_plan;
    std::printf("fault plan: %s (seed %llu)\n", faults_spec.c_str(),
                static_cast<unsigned long long>(fault_plan.seed()));
  }

  mwsj::StatusOr<mwsj::JoinRunResult> result =
      mwsj::Status::Internal("join did not run");
  if (num_jobs <= 1) {
    result = knn_mr
                 ? mwsj::RunKnnJoinMr(query.value(), relations, knn_k, options)
                 : mwsj::RunSpatialJoin(query.value(), relations, options);
  } else {
    // Service path: register the datasets once in a resident catalog and
    // submit the query N times through the scheduler. The first submission
    // ingests and leaves the grid / round-1 artifacts resident; repeats
    // must hit the catalog and every submission must agree byte-for-byte.
    mwsj::DatasetCatalog catalog;
    // Register under position-unique catalog names: a query that repeats
    // a relation name (self-join roles) would otherwise have the second
    // PutDataset bump the first one's epoch and both roles silently
    // resolve to the last-registered data, diverging from the positional
    // relations the num_jobs==1 path uses.
    std::vector<std::string> names = query.value().relation_names();
    {
      std::map<std::string, int> seen;
      for (size_t r = 0; r < names.size(); ++r) {
        const int uses = seen[names[r]]++;
        if (uses > 0) {
          names[r] = mwsj::StrFormat("%s#%zu", names[r].c_str(), r);
        }
      }
    }
    for (size_t r = 0; r < names.size(); ++r) {
      catalog.PutDataset(names[r], relations[r]);
    }
    mwsj::SchedulerOptions sched_options;
    sched_options.pool = pool.get();
    sched_options.tracer = tracer.get();
    sched_options.catalog = &catalog;
    sched_options.max_in_flight = num_jobs < 4 ? num_jobs : 4;
    sched_options.max_queued = num_jobs;
    std::printf("scheduler: %d submissions, %d in flight\n", num_jobs,
                sched_options.max_in_flight);
    std::vector<mwsj::JobHandle> handles;
    {
      mwsj::JobScheduler scheduler(sched_options);
      for (int j = 0; j < num_jobs; ++j) {
        mwsj::JobSpec spec = knn_mr
                                 ? mwsj::MakeKnnMrJobSpec(query.value(), knn_k)
                                 : mwsj::JobSpec{};
        spec.query = query.value();
        spec.dataset_names = names;
        spec.options = options;
        auto handle = scheduler.Submit(std::move(spec));
        if (!handle.ok()) {
          std::fprintf(stderr, "%s\n", handle.status().ToString().c_str());
          return 1;
        }
        handles.push_back(std::move(handle).value());
      }
    }  // Scheduler destruction drains every submission.
    for (mwsj::JobHandle& handle : handles) {
      const mwsj::StatusOr<mwsj::JoinRunResult>& job_result = handle.Wait();
      if (!job_result.ok()) {
        std::fprintf(stderr, "job #%lld: %s\n",
                     static_cast<long long>(handle.id()),
                     job_result.status().ToString().c_str());
        return 1;
      }
      std::printf("job #%lld: %lld tuples (catalog hits %lld, misses %lld)\n",
                  static_cast<long long>(handle.id()),
                  static_cast<long long>(job_result.value().num_tuples),
                  static_cast<long long>(
                      job_result.value().stats.catalog_hits),
                  static_cast<long long>(
                      job_result.value().stats.catalog_misses));
    }
    const mwsj::JoinRunResult& first = handles.front().Wait().value();
    for (size_t j = 1; j < handles.size(); ++j) {
      const mwsj::JoinRunResult& other = handles[j].Wait().value();
      if (other.num_tuples != first.num_tuples ||
          other.tuples != first.tuples) {
        std::fprintf(stderr, "job #%lld output diverges from job #%lld\n",
                     static_cast<long long>(handles[j].id()),
                     static_cast<long long>(handles.front().id()));
        return 1;
      }
    }
    std::printf(
        "all %d submissions identical; catalog totals: %lld hits,"
        " %lld misses\n",
        num_jobs, static_cast<long long>(catalog.hits()),
        static_cast<long long>(catalog.misses()));
    result = handles.front().Take();
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  if (verify && !options.count_only) {
    if (knn_mr) {
      // VerifyJoinResult checks multiway join predicates; knn-mr tuples are
      // {point, rank, rect} and are pinned by the differential test suite.
      std::printf("verification: skipped (not a predicate join)\n");
    } else {
      const mwsj::Status st = mwsj::VerifyJoinResult(query.value(), relations,
                                                     result.value().tuples);
      if (!st.ok()) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::printf("verification: OK (sound and duplicate-free)\n");
    }
  }

  if (knn_mr) {
    std::printf("algorithm: knn-mr (k=%d)\n", knn_k);
  } else {
    std::printf("algorithm: %s\n", AlgorithmName(options.algorithm));
  }
  std::printf("output tuples: %lld\n",
              static_cast<long long>(result.value().num_tuples));
  for (const mwsj::JobStats& job : result.value().stats.jobs) {
    std::printf("  job %-22s in=%lld shuffled=%lld (%s) out=%lld\n",
                job.job_name.c_str(),
                static_cast<long long>(job.map_input_records),
                static_cast<long long>(job.intermediate_records),
                mwsj::FormatMillions(
                    static_cast<double>(job.intermediate_bytes))
                    .c_str(),
                static_cast<long long>(job.reduce_output_records));
    std::printf("      phases map=%.3fs shuffle=%.3fs reduce=%.3fs"
                " (slowest map chunk %.3fs, slowest reducer %.3fs)\n",
                job.map_seconds, job.shuffle_seconds, job.reduce_seconds,
                job.MaxMapChunkSeconds(), job.MaxReducerSeconds());
    if (job.AnyFaults()) {
      std::printf(
          "      faults map=%lld/%lld attempts reduce=%lld/%lld attempts"
          " (retries %lld, speculative %lld, wasted %lld records in %.3fs,"
          " backoff %.3fs)\n",
          static_cast<long long>(job.map_faults.attempts),
          static_cast<long long>(job.map_faults.tasks),
          static_cast<long long>(job.reduce_faults.attempts),
          static_cast<long long>(job.reduce_faults.tasks),
          static_cast<long long>(job.map_faults.retries +
                                 job.reduce_faults.retries),
          static_cast<long long>(job.map_faults.speculative +
                                 job.reduce_faults.speculative),
          static_cast<long long>(job.map_faults.wasted_records +
                                 job.reduce_faults.wasted_records),
          job.map_faults.wasted_seconds + job.reduce_faults.wasted_seconds,
          job.map_faults.backoff_seconds + job.reduce_faults.backoff_seconds);
    }
  }
  const mwsj::CostModel model;
  std::printf("modeled cluster time: %s\n",
              mwsj::FormatHhMm(model.RunSeconds(result.value().stats)).c_str());

  if (explain) {
    std::printf("\n%s", ExplainRun(query.value(), result.value(), model).c_str());
  }
  if (!stats_json_path.empty()) {
    std::ofstream json_out(stats_json_path);
    json_out << mwsj::RunStatsToJson(result.value().stats) << "\n";
    if (!json_out) {
      std::fprintf(stderr, "failed to write %s\n", stats_json_path.c_str());
      return 1;
    }
    std::printf("wrote stats to %s\n", stats_json_path.c_str());
  }

  if (tracer != nullptr) {
    const mwsj::Status st = tracer->WriteJson(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf(
        "wrote %lld trace events to %s (open in https://ui.perfetto.dev "
        "or chrome://tracing)\n",
        static_cast<long long>(tracer->event_count()), trace_path.c_str());
  }

  if (!output_path.empty()) {
    const std::vector<std::string> columns =
        knn_mr ? std::vector<std::string>{"point", "rank", "rect"}
               : query.value().relation_names();
    const mwsj::Status st =
        mwsj::WriteTuplesCsv(output_path, columns, result.value().tuples);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu tuples to %s\n", result.value().tuples.size(),
                output_path.c_str());
  }
  return 0;
}
