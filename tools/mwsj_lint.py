#!/usr/bin/env python3
"""mwsj_lint — repo-specific invariant checker for the mwsj tree.

Enforces source-level invariants the compiler cannot (determinism, seeded
randomness, hot-path discipline) with file:line diagnostics and stable rule
IDs. Complements, not replaces, Clang's -Wthread-safety and clang-tidy: the
rules here encode *this repo's* correctness argument — the paper's
C-Rep/C-Rep-L exactly-once tuple accounting depends on deterministic
iteration and seeded PRNGs, and the PR-3 kernel work depends on hot paths
staying free of type-erased calls and allocation.

Usage:
    mwsj_lint.py [--root DIR] [--list-rules] [paths...]

Paths default to `src tools` under --root (default: the repo root inferred
from this script's location). Rule applicability is decided from each file's
path *relative to the root*, so fixture trees can be linted with
`--root tests/tools/fixtures`.

Suppression: a violating line is ignored when it, or the line directly
above it, carries `// mwsj-lint: allow(<rule-id>)`.

File markers (anywhere in the file, conventionally the header comment):
    // mwsj-lint: hot-path        enables rule hot-path-std-function
    // mwsj-lint: alloc-free      enables rule alloc-in-alloc-free
    // mwsj-lint: spill-budgeted  enables rule spill-unbounded

hot-path-std-function also applies to any file declaring MWSJ_ALLOC_FREE
functions (common/effects.h). The hot-path/alloc-free rules are textual
pre-checks for the annotation layer: the call-graph-aware analysis
(allocation reachability, emit determinism, blocking reachability, lock
order) is tools/mwsj_check.py, which runs off compile_commands.json in CI.

Exit status: 0 when clean, 1 when violations were found, 2 on usage error.

The rule table lives in tools/mwsj_lint_rules.md; keep both in sync.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

CXX_SUFFIXES = {".h", ".cc"}

ALLOW_RE = re.compile(r"//\s*mwsj-lint:\s*allow\(([a-z0-9\-,\s]+)\)")
MARKER_RE = re.compile(
    r"//\s*mwsj-lint:\s*(hot-path|alloc-free|spill-budgeted)\b")


@dataclasses.dataclass
class Violation:
    path: pathlib.Path
    line: int  # 1-based.
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class SourceFile:
    """One parsed C++ file: raw lines plus comment/string-stripped lines.

    Rules match against `code` so identifiers inside comments or string
    literals (e.g. the word printf in an attribute or a doc comment) never
    trigger; suppressions and markers are read from `raw`.
    """

    path: pathlib.Path       # As given on the command line (for diagnostics).
    rel: pathlib.PurePosixPath  # Relative to --root (for rule applicability).
    raw: list[str]
    code: list[str]
    markers: set[str]
    allows: dict[int, set[str]]  # 0-based line -> allowed rule ids.


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment and string-literal *contents* with spaces.

    Newlines are preserved so line numbers survive. A simple state machine
    is plenty for this codebase (no raw strings with quotes in delimiters,
    no trigraphs).
    """
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = CHAR
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in (STRING, CHAR):
            quote = '"' if state == STRING else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = NORMAL
                out.append(quote)
            elif c == "\n":  # Unterminated literal; recover.
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def parse_file(path: pathlib.Path, rel: pathlib.PurePosixPath) -> SourceFile:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw = text.splitlines()
    code = strip_comments_and_strings(text).splitlines()
    # splitlines() drops a trailing partial line difference; pad defensively.
    while len(code) < len(raw):
        code.append("")
    markers: set[str] = set()
    allows: dict[int, set[str]] = {}
    for idx, line in enumerate(raw):
        for m in MARKER_RE.finditer(line):
            markers.add(m.group(1))
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows.setdefault(idx, set()).update(rules)
    return SourceFile(path=path, rel=rel, raw=raw, code=code,
                      markers=markers, allows=allows)


def is_suppressed(f: SourceFile, line_idx: int, rule: str) -> bool:
    for idx in (line_idx, line_idx - 1):
        if idx in f.allows and rule in f.allows[idx]:
            return True
    # A multi-line justification puts the allow(...) head several lines up;
    # honor it across the contiguous //-comment block directly above the
    # violating line (same grammar as tools/mwsj_check.py).
    idx = line_idx - 1
    while 0 <= idx < len(f.raw) and f.raw[idx].lstrip().startswith("//"):
        if idx in f.allows and rule in f.allows[idx]:
            return True
        idx -= 1
    return False


def in_dir(rel: pathlib.PurePosixPath, top: str) -> bool:
    return rel.parts[:1] == (top,)


def under(rel: pathlib.PurePosixPath, *parts: str) -> bool:
    return rel.parts[: len(parts)] == parts


# ---------------------------------------------------------------------------
# Rules. Each returns a list of (line_idx, message).


def rule_rng(f: SourceFile):
    """rng-outside-common: unseeded/libstdc++ randomness outside src/common.

    Datasets, shuffles, fault plans, and property tests must be reproducible
    across platforms and standard-library versions, so everything draws from
    the repo's seeded xoshiro PRNG (common/random.h). <random> engines and
    libc rand() may only appear inside src/common (where the PRNG itself and
    its tests live).
    """
    if under(f.rel, "src", "common"):
        return []
    pat = re.compile(
        r"std::(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
        r"random_device)\b|(?<![\w:])s?rand\s*\(")
    out = []
    for idx, line in enumerate(f.code):
        m = pat.search(line)
        if m:
            out.append((idx, f"'{m.group(0).strip()}' outside src/common; "
                             "use the seeded mwsj::Rng (common/random.h)"))
    return out


def rule_stdout(f: SourceFile):
    """stdout-in-library: no std::cout/printf in src/ library code.

    Library code reports through Status, JobStats, and the tracer; stdout
    belongs to the CLI tools (tools/ is exempt). fprintf(stderr, ...) on
    abort paths is allowed.
    """
    if not in_dir(f.rel, "src"):
        return []
    pat = re.compile(r"std::cout\b|(?<![\w:])(?:std::)?printf\s*\(")
    out = []
    for idx, line in enumerate(f.code):
        m = pat.search(line)
        if m:
            out.append((idx, f"'{m.group(0).strip()}' in library code; "
                             "return a Status or report via stats/trace "
                             "(stdout is reserved for tools/)"))
    return out


def rule_unordered_emit(f: SourceFile):
    """unordered-emit: unordered-container iteration feeding an emit path.

    Iterating std::unordered_map/unordered_set produces a platform- and
    seed-dependent order; if that order reaches an Emit()/output path the
    job output is nondeterministic, breaking the byte-identical replay the
    chaos suite (and the paper's exactly-once argument) depends on. Sort
    keys first, or iterate the sorted source collection instead.
    """
    decl_re = re.compile(
        r"std::unordered_(?:map|set|multimap|multiset)\s*"
        r"<(?:[^<>;]|<[^<>;]*>)*>\s*(?:const\s*)?[&*]?\s*(\w+)")
    names = set()
    for line in f.code:
        for m in decl_re.finditer(line):
            names.add(m.group(1))
    if not names:
        return []
    out = []
    emit_re = re.compile(r"\bEmit\s*\(")
    for idx, line in enumerate(f.code):
        m = re.search(r"for\s*\([^;)]*:\s*\*?(\w+)\s*\)", line)
        if not m or m.group(1) not in names:
            continue
        message = (f"iteration over unordered container '{m.group(1)}' "
                   "feeds an Emit path; unordered iteration order is "
                   "nondeterministic — sort before emitting")
        # Single-line braceless body: the emit sits on the for line itself.
        if emit_re.search(line[m.end():]):
            out.append((idx, message))
            continue
        # Scan the loop body (balanced braces from the first `{`) for emits.
        depth = 0
        seen_open = False
        j = idx
        while j < len(f.code):
            body_line = f.code[j]
            if seen_open and emit_re.search(body_line):
                out.append((idx, message))
                break
            depth += body_line.count("{") - body_line.count("}")
            if "{" in body_line:
                seen_open = True
            if seen_open and depth <= 0:
                break
            if not seen_open and j > idx:  # Braceless loop body: one stmt.
                if emit_re.search(body_line):
                    out.append((idx, message))
                break
            j += 1
    return out


ALLOC_FREE_ANNOTATION_RE = re.compile(r"\bMWSJ_ALLOC_FREE\b")


def rule_hot_path(f: SourceFile):
    """hot-path-std-function: no std::function near alloc-free kernels.

    Applies to files carrying the legacy `// mwsj-lint: hot-path` marker or
    declaring MWSJ_ALLOC_FREE functions (common/effects.h): both say calls
    there sit on a per-candidate/per-tuple path where std::function's type
    erasure (indirect call + possible allocation) is measurable; use
    templates or function pointers (see localjoin/multiway.h's templated
    emit). This is a cheap textual pre-check — the call-graph-aware
    allocation analysis behind the annotations is tools/mwsj_check.py
    alloc-free-reach, which this rule defers to instead of duplicating.
    """
    if "hot-path" not in f.markers and not any(
            ALLOC_FREE_ANNOTATION_RE.search(line) for line in f.code):
        return []
    out = []
    for idx, line in enumerate(f.code):
        if re.search(r"std::function\b", line):
            out.append((idx, "std::function in a hot-path file (marker or "
                             "MWSJ_ALLOC_FREE annotations); use a template "
                             "parameter or function pointer"))
    return out


def rule_trace_span(f: SourceFile):
    """trace-span-temporary: TraceSpan must be a named local.

    `TraceSpan(tracer, ...)` as a bare temporary is destroyed at the end of
    the full expression, producing a zero-length span that silently measures
    nothing. Name it (`TraceSpan span(tracer, ...);`) so it lives for the
    scope it is meant to measure.
    """
    out = []
    pat = re.compile(r"(?:^\s*|[;{}]\s*)TraceSpan\s*[({]([^)}]*)")
    # First "argument" looks like a parameter declaration (a type), so the
    # line is a constructor/function declaration, not a temporary.
    decl_arg = re.compile(r"\s*(?:const\b|\w+\s*[*&])")
    for idx, line in enumerate(f.code):
        m = pat.search(line)
        if not m:
            continue
        args = m.group(1)
        if not args.strip() or decl_arg.match(args):
            continue  # Default/copy/ctor declaration, not a use.
        if "= delete" in line or "= default" in line:
            continue
        out.append((idx, "TraceSpan constructed as a temporary dies at "
                         "the end of the statement (zero-length span); "
                         "bind it to a named local"))
    return out


def rule_alloc_free(f: SourceFile):
    """alloc-in-alloc-free: no naked new/malloc in alloc-free kernels.

    A `// mwsj-lint: alloc-free` marker pins the PR-3 kernel contract
    (allocs_per_probe == 0): per-call heap allocation is forbidden. Naked
    `new` and the malloc family are rejected; owned containers obtained
    from caller-provided scratch are the sanctioned pattern.

    Legacy-marker pre-check only: kernels that migrated to function-level
    MWSJ_ALLOC_FREE annotations (common/effects.h) are enforced — including
    container growth and everything transitively reachable — by
    tools/mwsj_check.py alloc-free-reach, so this rule deliberately does
    not fire on annotations (no duplicate diagnostics). Prefer annotations
    over the file marker in new code.
    """
    if "alloc-free" not in f.markers:
        return []
    pat = re.compile(r"(?<![\w:])new\b(?!\s*\()|"
                     r"(?<![\w:])(?:m|c|re)alloc\s*\(")
    out = []
    for idx, line in enumerate(f.code):
        m = pat.search(line)
        if m:
            out.append((idx, f"'{m.group(0).strip()}' in a file marked "
                             "'mwsj-lint: alloc-free'; kernels must not "
                             "heap-allocate per call (use caller-owned "
                             "scratch)"))
    return out


def rule_spill_unbounded(f: SourceFile):
    """spill-unbounded: unreserved vector growth in spill-budgeted files.

    A `// mwsj-lint: spill-budgeted` marker declares the file implements
    the out-of-core shuffle contract (DESIGN.md §2.13): resident memory is
    bounded by the shuffle budget, not by the data size. Amortized-doubling
    growth (`push_back`/`emplace_back`) on a vector that is never
    `reserve()`d anywhere in the file is the classic way that contract
    silently rots, so it is rejected; reserve an explicit bound first, or
    annotate with `// mwsj-lint: allow(spill-unbounded)` and justify why
    the growth is bounded by construction.
    """
    if "spill-budgeted" not in f.markers:
        return []
    reserve_re = re.compile(r"(\w+)\s*(?:\.|->)\s*reserve\s*\(")
    reserved = set()
    for line in f.code:
        for m in reserve_re.finditer(line):
            reserved.add(m.group(1))
    grow_re = re.compile(r"(\w+)\s*(?:\.|->)\s*(?:push_back|emplace_back)"
                         r"\s*\(")
    out = []
    for idx, line in enumerate(f.code):
        for m in grow_re.finditer(line):
            if m.group(1) in reserved:
                continue
            out.append((idx, f"'{m.group(0).strip()}...' grows "
                             f"'{m.group(1)}' with no reserve() in a file "
                             "marked 'mwsj-lint: spill-budgeted'; bound "
                             "the allocation (reserve) or justify with "
                             "allow(spill-unbounded)"))
    return out


def rule_engine_run(f: SourceFile):
    """engine-run-outside-scheduler: direct MapReduceJob::Run callers.

    Since the scheduler-core redesign, execution enters through
    JobScheduler::Submit (core/scheduler.h) or the blocking RunSpatialJoin
    compatibility wrapper — that is what guarantees shared-pool admission
    control, per-job attribution, and catalog reuse. Only the algorithm
    implementations (src/core, src/queries) and the engine itself
    (src/mapreduce) may drive MapReduceJob::Run directly; anything else
    including mapreduce/engine.h and calling `.Run(` is bypassing the
    scheduler.
    """
    for allowed in (("src", "core"), ("src", "queries"),
                    ("src", "mapreduce")):
        if under(f.rel, *allowed):
            return []
    if not any("mapreduce/engine.h" in line for line in f.raw
               if line.lstrip().startswith("#include")):
        return []
    pat = re.compile(r"(?:\.|->)\s*Run\s*\(")
    out = []
    for idx, line in enumerate(f.code):
        if pat.search(line):
            out.append((idx, "direct MapReduceJob::Run call outside the "
                             "scheduler core; submit through "
                             "JobScheduler::Submit (core/scheduler.h) or "
                             "the RunSpatialJoin wrapper"))
    return out


RULES = [
    ("rng-outside-common", rule_rng),
    ("stdout-in-library", rule_stdout),
    ("unordered-emit", rule_unordered_emit),
    ("hot-path-std-function", rule_hot_path),
    ("trace-span-temporary", rule_trace_span),
    ("alloc-in-alloc-free", rule_alloc_free),
    ("spill-unbounded", rule_spill_unbounded),
    ("engine-run-outside-scheduler", rule_engine_run),
]


def lint_file(f: SourceFile) -> list[Violation]:
    violations = []
    for rule_id, fn in RULES:
        for idx, message in fn(f):
            if is_suppressed(f, idx, rule_id):
                continue
            violations.append(Violation(f.path, idx + 1, rule_id, message))
    violations.sort(key=lambda v: (str(v.path), v.line, v.rule))
    return violations


def collect_files(root: pathlib.Path, paths: list[str]):
    for p in paths:
        path = pathlib.Path(p)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files = sorted(q for q in path.rglob("*") if
                           q.suffix in CXX_SUFFIXES and q.is_file())
        elif path.is_file():
            files = [path]
        else:
            raise FileNotFoundError(p)
        for q in files:
            try:
                rel = pathlib.PurePosixPath(q.resolve().relative_to(
                    root.resolve()).as_posix())
            except ValueError:
                rel = pathlib.PurePosixPath(q.name)
            yield q, rel


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="mwsj_lint.py",
        description="Repo-specific determinism/hot-path invariant checker.")
    parser.add_argument("--root", default=None,
                        help="tree root for rule applicability "
                             "(default: repo root containing this script)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tools)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, fn in RULES:
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{rule_id:24s} {doc}")
        return 0

    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    paths = args.paths or ["src", "tools"]

    violations: list[Violation] = []
    checked = 0
    try:
        for path, rel in collect_files(root, paths):
            checked += 1
            violations.extend(lint_file(parse_file(path, rel)))
    except FileNotFoundError as e:
        print(f"mwsj_lint: no such file or directory: {e}", file=sys.stderr)
        return 2

    for v in violations:
        print(v)
    if violations:
        print(f"mwsj_lint: {len(violations)} violation(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"mwsj_lint: {checked} file(s) clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
