# End-to-end smoke test of the CLI tools, run by ctest:
#   mwsj_datagen (csv + binary) -> mwsj_join --verify --output -> tuple CSV,
#   plus a Chrome-trace export validated for structure and span coverage.
# Invoked with -DDATAGEN=<path> -DJOIN=<path> -DWORKDIR=<dir>.

file(MAKE_DIRECTORY ${WORKDIR})

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()

run_checked(${DATAGEN} --kind synthetic --n 3000 --seed 1 --space 4000
            --lmax 60 --bmax 60 --out ${WORKDIR}/a.csv)
run_checked(${DATAGEN} --kind synthetic --n 3000 --seed 2 --space 4000
            --lmax 60 --bmax 60 --out ${WORKDIR}/b.bin)
run_checked(${DATAGEN} --kind california --n 2000 --out ${WORKDIR}/roads.csv)

run_checked(${JOIN} --query "A OV B AND B RA(40) A2" --input A=${WORKDIR}/a.csv
            --input B=${WORKDIR}/b.bin --input A2=${WORKDIR}/a.csv
            --algorithm crepl --grid 4x4 --verify --explain
            --output ${WORKDIR}/tuples.csv
            --stats-json ${WORKDIR}/stats.json
            --trace=${WORKDIR}/trace.json)

# The output CSV must exist, have the right header, and more than one line.
file(READ ${WORKDIR}/tuples.csv tuples)
string(FIND "${tuples}" "A,B,A2" header_pos)
if(NOT header_pos EQUAL 0)
  message(FATAL_ERROR "tuples.csv missing relation header: ${tuples}")
endif()

# The stats JSON must mention both C-Rep rounds.
file(READ ${WORKDIR}/stats.json stats)
string(FIND "${stats}" "crep_round1_mark" r1)
string(FIND "${stats}" "crepl_round2_join" r2)
if(r1 EQUAL -1 OR r2 EQUAL -1)
  message(FATAL_ERROR "stats.json missing job entries: ${stats}")
endif()

# The trace must be present and cover the run: Chrome-trace envelope, both
# C-Rep rounds, and every engine phase.
file(READ ${WORKDIR}/trace.json trace)
foreach(needle "\"traceEvents\"" "\"crep_round1\"" "\"crep_round2\""
        "\"map\"" "\"shuffle\"" "\"reduce\"" "\"grid_build\"")
  string(FIND "${trace}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace.json missing ${needle}")
  endif()
endforeach()

# If a python3 is around, hold the trace to full JSON strictness.
find_program(PYTHON3 python3)
if(PYTHON3)
  execute_process(COMMAND ${PYTHON3} -m json.tool ${WORKDIR}/trace.json
                  RESULT_VARIABLE json_code OUTPUT_QUIET
                  ERROR_VARIABLE json_err)
  if(NOT json_code EQUAL 0)
    message(FATAL_ERROR "trace.json is not valid JSON: ${json_err}")
  endif()
  execute_process(COMMAND ${PYTHON3} -m json.tool ${WORKDIR}/stats.json
                  RESULT_VARIABLE json_code OUTPUT_QUIET
                  ERROR_VARIABLE json_err)
  if(NOT json_code EQUAL 0)
    message(FATAL_ERROR "stats.json is not valid JSON: ${json_err}")
  endif()
endif()

# Cross-check: brute force must report the same tuple count.
execute_process(COMMAND ${JOIN} --query "A OV B AND B RA(40) A2"
                --input A=${WORKDIR}/a.csv --input B=${WORKDIR}/b.bin
                --input A2=${WORKDIR}/a.csv --algorithm brute --count-only
                OUTPUT_VARIABLE brute_out RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "brute-force run failed")
endif()
string(REGEX MATCH "output tuples: ([0-9]+)" _ ${brute_out})
set(brute_count ${CMAKE_MATCH_1})
string(REGEX MATCHALL "[^\n]+" tuple_lines "${tuples}")
list(LENGTH tuple_lines total_lines)
math(EXPR tuple_count "${total_lines} - 1")  # Minus the header.
if(NOT tuple_count EQUAL brute_count)
  message(FATAL_ERROR
          "C-Rep-L wrote ${tuple_count} tuples but brute force counted "
          "${brute_count}")
endif()

message(STATUS "pipeline smoke OK: ${tuple_count} tuples, verified")
